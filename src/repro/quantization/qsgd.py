"""QSGD stochastic quantization (Alistarh et al., NIPS 2017; Section 2.3).

Values are stochastically rounded to a small set of levels so that the
quantizer is *unbiased* — ``E[Q(v)] = v`` — which is what guarantees
SGD convergence without error feedback.  Two level layouts from the
paper's artefact (Section 3.2.2) are provided:

``sign``
    One bit stores the sign; the remaining ``bits - 1`` bits address
    ``s = 2**(bits-1) - 1`` uniformly spaced magnitude levels in
    ``[0, scale]`` (level 0 encodes an exact zero).  This is the layout
    of the original QSGD paper.

``grid``
    The interval ``[-scale, scale]`` is divided into ``2**bits - 1``
    equal intervals whose ``2**bits`` endpoints are the levels.

Scaling per bucket is either the 2-norm (sparse-friendly, the original
paper's choice) or the infinity norm (lower variance; the paper found
it more accurate and uses it by default).  Bucketing bounds the
variance added per scale factor: the paper's tuned bucket sizes are
128 (2-bit), 512 (4- and 8-bit) and 8192 (16-bit).
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import EncodedTensor, Quantizer
from .bucketing import from_buckets, to_buckets

__all__ = ["Qsgd", "DEFAULT_BUCKET_SIZES"]

#: bucket sizes tuned for accuracy in the paper (Section 4.4)
DEFAULT_BUCKET_SIZES = {2: 128, 4: 512, 8: 512, 16: 8192}

_VARIANTS = ("sign", "grid")
_NORMS = ("inf", "l2")


def _default_bucket_size(bits: int) -> int:
    return DEFAULT_BUCKET_SIZES.get(bits, 512)


class Qsgd(Quantizer):
    """Stochastic uniform quantization with per-bucket scaling."""

    requires_error_feedback = False

    def __init__(
        self,
        bits: int,
        bucket_size: int | None = None,
        norm: str = "inf",
        variant: str = "sign",
    ):
        if not 2 <= bits <= 16:
            raise ValueError(f"QSGD bits must be in [2, 16], got {bits}")
        if norm not in _NORMS:
            raise ValueError(f"norm must be one of {_NORMS}, got {norm!r}")
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self.bits = bits
        self.bucket_size = (
            bucket_size if bucket_size is not None else _default_bucket_size(bits)
        )
        if self.bucket_size < 1:
            raise ValueError(
                f"bucket_size must be >= 1, got {self.bucket_size}"
            )
        self.norm = norm
        self.variant = variant
        self.name = f"qsgd{bits}"
        self.nominal_bits = float(bits)

    def effective_bucket(self, count: int) -> int:
        """Bucket size actually used for a ``count``-element tensor.

        Capped at the tensor size so that small matrices form a single
        bucket instead of being padded out to the nominal size (CNTK
        reshapes the matrix, it never pads beyond it).
        """
        return max(1, min(self.bucket_size, count))

    # -- scale ----------------------------------------------------------
    def _scales(self, buckets: np.ndarray) -> np.ndarray:
        if self.norm == "inf":
            return np.abs(buckets).max(axis=1)
        return np.sqrt(np.square(buckets).sum(axis=1))

    # -- encode ---------------------------------------------------------
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        grad = np.asarray(grad, dtype=np.float32)
        bucket_size = self.effective_bucket(grad.size)
        buckets = to_buckets(grad, bucket_size)
        scales = self._scales(buckets).astype(np.float32)

        if self.variant == "sign":
            codes = self._encode_sign(buckets, scales, rng)
        else:
            codes = self._encode_grid(buckets, scales, rng)

        words = bitpack.pack(codes.reshape(-1), width=self.bits)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "words": words},
            meta={
                "bits": self.bits,
                "bucket_size": bucket_size,
                "variant": self.variant,
            },
        )

    def _encode_sign(
        self,
        buckets: np.ndarray,
        scales: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        s = (1 << (self.bits - 1)) - 1
        safe = np.where(scales > 0.0, scales, 1.0)[:, None]
        ratio = np.clip(np.abs(buckets) / safe, 0.0, 1.0) * s
        low = np.floor(ratio)
        prob = ratio - low
        level = low + (rng.random(buckets.shape) < prob)
        level = np.minimum(level, s).astype(np.uint32)
        negative = (buckets < 0.0).astype(np.uint32)
        codes = (level << 1) | negative
        codes[scales == 0.0, :] = 0
        return codes

    def _encode_grid(
        self,
        buckets: np.ndarray,
        scales: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_levels = 1 << self.bits
        step = 2.0 * scales / (n_levels - 1)
        safe_step = np.where(step > 0.0, step, 1.0)[:, None]
        position = (buckets + scales[:, None]) / safe_step
        low = np.floor(position)
        prob = position - low
        index = low + (rng.random(buckets.shape) < prob)
        index = np.clip(index, 0, n_levels - 1).astype(np.uint32)
        index[scales == 0.0, :] = 0
        return index

    # -- decode ---------------------------------------------------------
    def decode(self, message: EncodedTensor) -> np.ndarray:
        bits = int(message.meta["bits"])
        bucket_size = int(message.meta["bucket_size"])
        variant = str(message.meta["variant"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        n_buckets = scales.shape[0]
        codes = bitpack.unpack(
            message.payload["words"], n_buckets * bucket_size, width=bits
        ).reshape(n_buckets, bucket_size)

        if variant == "sign":
            s = (1 << (bits - 1)) - 1
            level = (codes >> 1).astype(np.float32)
            sign = 1.0 - 2.0 * (codes & 1).astype(np.float32)
            buckets = sign * level / s * scales[:, None]
        else:
            n_levels = 1 << bits
            step = 2.0 * scales / (n_levels - 1)
            buckets = codes.astype(np.float32) * step[:, None] - scales[:, None]
            buckets[scales == 0.0, :] = 0.0
        return from_buckets(buckets.astype(np.float32), message.shape)

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count)
        buckets = bucket_count(count, bucket_size)
        code_words = bitpack.packed_words(buckets * bucket_size, self.bits)
        return MESSAGE_HEADER_BYTES + 4 * buckets + 4 * code_words
