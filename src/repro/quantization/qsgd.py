"""QSGD stochastic quantization (Alistarh et al., NIPS 2017; Section 2.3).

Values are stochastically rounded to a small set of levels so that the
quantizer is *unbiased* — ``E[Q(v)] = v`` — which is what guarantees
SGD convergence without error feedback.  Two level layouts from the
paper's artefact (Section 3.2.2) are provided:

``sign``
    One bit stores the sign; the remaining ``bits - 1`` bits address
    ``s = 2**(bits-1) - 1`` uniformly spaced magnitude levels in
    ``[0, scale]`` (level 0 encodes an exact zero).  This is the layout
    of the original QSGD paper.

``grid``
    The interval ``[-scale, scale]`` is divided into ``2**bits - 1``
    equal intervals whose ``2**bits`` endpoints are the levels.

Scaling per bucket is either the 2-norm (sparse-friendly, the original
paper's choice) or the infinity norm (lower variance; the paper found
it more accurate and uses it by default).  Bucketing bounds the
variance added per scale factor: the paper's tuned bucket sizes are
128 (2-bit), 512 (4- and 8-bit) and 8192 (16-bit).
"""

from __future__ import annotations

import numpy as np

from . import bitpack, kernels
from .base import BucketSumDecoder, EncodedTensor, Quantizer, SumDecoder
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .workspace import EncodeWorkspace

__all__ = ["Qsgd", "DEFAULT_BUCKET_SIZES"]

#: bucket sizes tuned for accuracy in the paper (Section 4.4)
DEFAULT_BUCKET_SIZES = {2: 128, 4: 512, 8: 512, 16: 8192}

_VARIANTS = ("sign", "grid")
_NORMS = ("inf", "l2")


def _default_bucket_size(bits: int) -> int:
    return DEFAULT_BUCKET_SIZES.get(bits, 512)


class Qsgd(Quantizer):
    """Stochastic uniform quantization with per-bucket scaling."""

    requires_error_feedback = False

    def __init__(
        self,
        bits: int,
        bucket_size: int | None = None,
        norm: str = "inf",
        variant: str = "sign",
    ):
        if not 2 <= bits <= 16:
            raise ValueError(f"QSGD bits must be in [2, 16], got {bits}")
        if norm not in _NORMS:
            raise ValueError(f"norm must be one of {_NORMS}, got {norm!r}")
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self.bits = bits
        self.bucket_size = (
            bucket_size if bucket_size is not None else _default_bucket_size(bits)
        )
        if self.bucket_size < 1:
            raise ValueError(
                f"bucket_size must be >= 1, got {self.bucket_size}"
            )
        self.norm = norm
        self.variant = variant
        self.name = f"qsgd{bits}"
        self.nominal_bits = float(bits)

    def effective_bucket(self, count: int) -> int:
        """Bucket size actually used for a ``count``-element tensor.

        Capped at the tensor size so that small matrices form a single
        bucket instead of being padded out to the nominal size (CNTK
        reshapes the matrix, it never pads beyond it).
        """
        return max(1, min(self.bucket_size, count))

    # -- encode ---------------------------------------------------------
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad)
        bucket_size = self.effective_bucket(grad.size)
        plan = bucket_plan(grad.size, bucket_size)
        lanes = (plan.n_buckets, bucket_size)
        kern = kernels.active()

        buckets = ws.array("qsgd.buckets", lanes)
        to_buckets_into(grad, bucket_size, buckets)
        scales = ws.array("qsgd.scales", plan.n_buckets)
        if self.norm == "inf":
            abs_buckets = kern.absmax_scales(buckets, scales, ws)
        else:
            # l2 scales are computed with numpy under *every* backend:
            # the pairwise summation order of the axis-1 reduce is part
            # of the reference bit pattern, so it is not re-implemented
            # in the compiled kernels (see kernels._numpy)
            work = ws.array("qsgd.work", lanes)
            np.square(buckets, out=work)
            work.sum(axis=1, out=scales)
            np.sqrt(scales, out=scales)
            abs_buckets = None

        # the stochastic-rounding draws are made here, with the run's
        # generator, and passed into the kernel: every backend consumes
        # the identical RNG stream, which is what makes trajectories
        # backend-independent
        rand = ws.array("qsgd.rand", lanes, np.float64)
        rng.random(out=rand)
        # fused quantize+pack: the code plane is wire-intermediate only,
        # so codes are emitted straight into the packed words without a
        # round trip through a full uint32 scratch plane
        words = ws.array(
            "qsgd.words", bitpack.packed_words(plan.padded, self.bits),
            np.uint32,
        )
        if self.variant == "sign":
            kern.quantize_sign_packed(
                buckets, scales, self.bits, rand, words, ws, abs_buckets
            )
        else:
            kern.quantize_grid_packed(
                buckets, scales, self.bits, rand, words, ws
            )
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "words": words},
            meta={
                "bits": self.bits,
                "bucket_size": bucket_size,
                "variant": self.variant,
            },
        )

    # -- decode ---------------------------------------------------------
    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = self._decode_values(message, workspace)
        return from_buckets_into(values, message.shape, out, accumulate)

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> SumDecoder:
        # accumulate in the contiguous bucket layout, un-bucket once
        return BucketSumDecoder(self, shape, workspace)

    def _decode_values(
        self,
        message: EncodedTensor,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decoded bucket matrix, before the bucket-order permutation."""
        ws = workspace if workspace is not None else EncodeWorkspace()
        bits, variant, scales, lanes = self._decode_meta(message)
        words = self._check_words(message.payload["words"], lanes, bits)
        values = ws.array("qsgd.dec.values", lanes)
        kern = kernels.active()
        if variant == "sign":
            kern.dequantize_sign_packed(words, scales, bits, values, False, ws)
        else:
            kern.dequantize_grid_packed(words, scales, bits, values, False, ws)
        return values

    def _decode_acc_into(
        self,
        message: EncodedTensor,
        acc: np.ndarray | None,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Fused decode-accumulate into the bucket-layout accumulator.

        Called by :class:`~repro.quantization.base.BucketSumDecoder`:
        decoded values are added straight into ``acc`` (allocated zeroed
        when ``None``) without materializing the decoded tensor, saving
        one full pass over the bucket matrix per peer.  Bit-identical to
        ``acc += _decode_values(message)`` — same operands, same order.
        """
        ws = workspace if workspace is not None else EncodeWorkspace()
        bits, variant, scales, lanes = self._decode_meta(message)
        if acc is None:
            acc = (
                ws.zeros("sumdec.bucket_acc", lanes)
                if workspace is not None
                else np.zeros(lanes, dtype=np.float32)
            )
        elif acc.shape != lanes:
            raise ValueError(
                f"accumulator shape {acc.shape} does not match the "
                f"message bucket geometry {lanes}"
            )
        words = self._check_words(message.payload["words"], lanes, bits)
        kern = kernels.active()
        if variant == "sign":
            kern.dequantize_sign_packed(words, scales, bits, acc, True, ws)
        else:
            kern.dequantize_grid_packed(words, scales, bits, acc, True, ws)
        return acc

    @staticmethod
    def _decode_meta(
        message: EncodedTensor,
    ) -> tuple[int, str, np.ndarray, tuple[int, int]]:
        """Parse the wire metadata shared by the decode paths."""
        bits = int(message.meta["bits"])
        bucket_size = int(message.meta["bucket_size"])
        variant = str(message.meta["variant"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        return bits, variant, scales, (scales.shape[0], bucket_size)

    @staticmethod
    def _check_words(
        words: np.ndarray, lanes: tuple[int, int], bits: int
    ) -> np.ndarray:
        """Validate the packed payload against the bucket geometry.

        The fused unpack+dequantize kernels index ``words`` by geometry
        instead of going through :func:`bitpack.unpack_into`, so its
        size check moves here.
        """
        words = np.ascontiguousarray(words, dtype=np.uint32)
        expected = bitpack.packed_words(lanes[0] * lanes[1], bits)
        if words.ndim != 1 or words.size != expected:
            raise ValueError(
                f"expected {expected} packed words for bucket geometry "
                f"{lanes} at {bits} bits, got shape {words.shape}"
            )
        return words

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count)
        buckets = bucket_count(count, bucket_size)
        code_words = bitpack.packed_words(buckets * bucket_size, self.bits)
        return MESSAGE_HEADER_BYTES + 4 * buckets + 4 * code_words
