"""QSGD stochastic quantization (Alistarh et al., NIPS 2017; Section 2.3).

Values are stochastically rounded to a small set of levels so that the
quantizer is *unbiased* — ``E[Q(v)] = v`` — which is what guarantees
SGD convergence without error feedback.  Two level layouts from the
paper's artefact (Section 3.2.2) are provided:

``sign``
    One bit stores the sign; the remaining ``bits - 1`` bits address
    ``s = 2**(bits-1) - 1`` uniformly spaced magnitude levels in
    ``[0, scale]`` (level 0 encodes an exact zero).  This is the layout
    of the original QSGD paper.

``grid``
    The interval ``[-scale, scale]`` is divided into ``2**bits - 1``
    equal intervals whose ``2**bits`` endpoints are the levels.

Scaling per bucket is either the 2-norm (sparse-friendly, the original
paper's choice) or the infinity norm (lower variance; the paper found
it more accurate and uses it by default).  Bucketing bounds the
variance added per scale factor: the paper's tuned bucket sizes are
128 (2-bit), 512 (4- and 8-bit) and 8192 (16-bit).
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import BucketSumDecoder, EncodedTensor, Quantizer, SumDecoder
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .workspace import EncodeWorkspace

__all__ = ["Qsgd", "DEFAULT_BUCKET_SIZES"]

#: bucket sizes tuned for accuracy in the paper (Section 4.4)
DEFAULT_BUCKET_SIZES = {2: 128, 4: 512, 8: 512, 16: 8192}

_VARIANTS = ("sign", "grid")
_NORMS = ("inf", "l2")


def _default_bucket_size(bits: int) -> int:
    return DEFAULT_BUCKET_SIZES.get(bits, 512)


class Qsgd(Quantizer):
    """Stochastic uniform quantization with per-bucket scaling."""

    requires_error_feedback = False

    def __init__(
        self,
        bits: int,
        bucket_size: int | None = None,
        norm: str = "inf",
        variant: str = "sign",
    ):
        if not 2 <= bits <= 16:
            raise ValueError(f"QSGD bits must be in [2, 16], got {bits}")
        if norm not in _NORMS:
            raise ValueError(f"norm must be one of {_NORMS}, got {norm!r}")
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self.bits = bits
        self.bucket_size = (
            bucket_size if bucket_size is not None else _default_bucket_size(bits)
        )
        if self.bucket_size < 1:
            raise ValueError(
                f"bucket_size must be >= 1, got {self.bucket_size}"
            )
        self.norm = norm
        self.variant = variant
        self.name = f"qsgd{bits}"
        self.nominal_bits = float(bits)

    def effective_bucket(self, count: int) -> int:
        """Bucket size actually used for a ``count``-element tensor.

        Capped at the tensor size so that small matrices form a single
        bucket instead of being padded out to the nominal size (CNTK
        reshapes the matrix, it never pads beyond it).
        """
        return max(1, min(self.bucket_size, count))

    # -- encode ---------------------------------------------------------
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad)
        bucket_size = self.effective_bucket(grad.size)
        plan = bucket_plan(grad.size, bucket_size)
        lanes = (plan.n_buckets, bucket_size)

        buckets = ws.array("qsgd.buckets", lanes)
        to_buckets_into(grad, bucket_size, buckets)
        work = ws.array("qsgd.work", lanes)
        scales = ws.array("qsgd.scales", plan.n_buckets)
        if self.norm == "inf":
            np.abs(buckets, out=work)
            work.max(axis=1, out=scales)
            abs_buckets = work  # |buckets|, reusable by the sign path
        else:
            np.square(buckets, out=work)
            work.sum(axis=1, out=scales)
            np.sqrt(scales, out=scales)
            abs_buckets = None

        if self.variant == "sign":
            codes = self._encode_sign(buckets, scales, rng, ws, abs_buckets)
        else:
            codes = self._encode_grid(buckets, scales, rng, ws)

        words = ws.array(
            "qsgd.words", bitpack.packed_words(plan.padded, self.bits),
            np.uint32,
        )
        bitpack.pack_into(
            codes.reshape(-1), self.bits, words, workspace=ws, check=False
        )
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "words": words},
            meta={
                "bits": self.bits,
                "bucket_size": bucket_size,
                "variant": self.variant,
            },
        )

    def _safe_scales(
        self, scales: np.ndarray, ws: EncodeWorkspace
    ) -> np.ndarray:
        """``where(scales > 0, scales, 1.0)`` without temporaries."""
        positive = ws.array("qsgd.posmask", scales.shape, bool)
        np.greater(scales, 0.0, out=positive)
        safe = ws.array("qsgd.safe", scales.shape)
        safe.fill(1.0)
        np.copyto(safe, scales, where=positive)
        return safe

    def _encode_sign(
        self,
        buckets: np.ndarray,
        scales: np.ndarray,
        rng: np.random.Generator,
        ws: EncodeWorkspace,
        abs_buckets: np.ndarray | None = None,
    ) -> np.ndarray:
        s = (1 << (self.bits - 1)) - 1
        lanes = buckets.shape
        safe = self._safe_scales(scales, ws)
        # ratio = clip(|buckets| / safe, 0, 1) * s, computed in place
        if abs_buckets is not None:
            ratio = abs_buckets  # caller already materialized |buckets|
        else:
            ratio = ws.array("qsgd.ratio", lanes)
            np.abs(buckets, out=ratio)
        np.divide(ratio, safe[:, None], out=ratio)
        np.clip(ratio, 0.0, 1.0, out=ratio)
        np.multiply(ratio, s, out=ratio)
        low = ws.array("qsgd.low", lanes)
        np.floor(ratio, out=low)
        prob = ratio  # ratio is dead after this: reuse as prob buffer
        np.subtract(ratio, low, out=prob)
        rand = ws.array("qsgd.rand", lanes, np.float64)
        rng.random(out=rand)
        rounded = ws.array("qsgd.round", lanes, bool)
        np.less(rand, prob, out=rounded)
        level = low
        np.add(low, rounded, out=level)
        np.minimum(level, s, out=level)
        codes = ws.array("qsgd.codes", lanes, np.uint32)
        codes[...] = level
        negative = rounded  # bool scratch, reused
        np.less(buckets, 0.0, out=negative)
        np.left_shift(codes, 1, out=codes)
        np.bitwise_or(codes, negative, out=codes)
        zero = ws.array("qsgd.zeromask", scales.shape, bool)
        np.equal(scales, 0.0, out=zero)
        codes[zero, :] = 0
        return codes

    def _encode_grid(
        self,
        buckets: np.ndarray,
        scales: np.ndarray,
        rng: np.random.Generator,
        ws: EncodeWorkspace,
    ) -> np.ndarray:
        n_levels = 1 << self.bits
        lanes = buckets.shape
        step = ws.array("qsgd.step", scales.shape)
        np.multiply(2.0, scales, out=step)
        np.divide(step, n_levels - 1, out=step)
        positive = ws.array("qsgd.posmask", scales.shape, bool)
        np.greater(step, 0.0, out=positive)
        safe_step = ws.array("qsgd.safe", scales.shape)
        safe_step.fill(1.0)
        np.copyto(safe_step, step, where=positive)
        position = ws.array("qsgd.ratio", lanes)
        np.add(buckets, scales[:, None], out=position)
        np.divide(position, safe_step[:, None], out=position)
        low = ws.array("qsgd.low", lanes)
        np.floor(position, out=low)
        prob = position
        np.subtract(position, low, out=prob)
        rand = ws.array("qsgd.rand", lanes, np.float64)
        rng.random(out=rand)
        rounded = ws.array("qsgd.round", lanes, bool)
        np.less(rand, prob, out=rounded)
        index = low
        np.add(low, rounded, out=index)
        np.clip(index, 0, n_levels - 1, out=index)
        codes = ws.array("qsgd.codes", lanes, np.uint32)
        codes[...] = index
        zero = ws.array("qsgd.zeromask", scales.shape, bool)
        np.equal(scales, 0.0, out=zero)
        codes[zero, :] = 0
        return codes

    # -- decode ---------------------------------------------------------
    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = self._decode_values(message, workspace)
        return from_buckets_into(values, message.shape, out, accumulate)

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> SumDecoder:
        # accumulate in the contiguous bucket layout, un-bucket once
        return BucketSumDecoder(self, shape, workspace)

    def _decode_values(
        self,
        message: EncodedTensor,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decoded bucket matrix, before the bucket-order permutation."""
        ws = workspace if workspace is not None else EncodeWorkspace()
        bits = int(message.meta["bits"])
        bucket_size = int(message.meta["bucket_size"])
        variant = str(message.meta["variant"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        n_buckets = scales.shape[0]
        lanes = (n_buckets, bucket_size)
        codes = bitpack.unpack_into(
            message.payload["words"],
            n_buckets * bucket_size,
            width=bits,
            workspace=ws,
        ).reshape(lanes)

        values = ws.array("qsgd.dec.values", lanes)
        if variant == "sign":
            s = (1 << (bits - 1)) - 1
            ints = ws.array("qsgd.dec.ints", lanes, np.uint32)
            level = ws.array("qsgd.dec.level", lanes)
            np.right_shift(codes, 1, out=ints)
            level[...] = ints
            np.bitwise_and(codes, 1, out=ints)
            values[...] = ints
            # sign = 1 - 2 * signbit; buckets = sign * level / s * scale
            np.multiply(2.0, values, out=values)
            np.subtract(1.0, values, out=values)
            np.multiply(values, level, out=values)
            np.divide(values, s, out=values)
            np.multiply(values, scales[:, None], out=values)
        else:
            n_levels = 1 << bits
            step = ws.array("qsgd.dec.step", scales.shape)
            np.multiply(2.0, scales, out=step)
            np.divide(step, n_levels - 1, out=step)
            values[...] = codes
            np.multiply(values, step[:, None], out=values)
            np.subtract(values, scales[:, None], out=values)
            zero = ws.array("qsgd.dec.zeromask", scales.shape, bool)
            np.equal(scales, 0.0, out=zero)
            values[zero, :] = 0.0
        return values

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count)
        buckets = bucket_count(count, bucket_size)
        code_words = bitpack.packed_words(buckets * bucket_size, self.bits)
        return MESSAGE_HEADER_BYTES + 4 * buckets + 4 * code_words
