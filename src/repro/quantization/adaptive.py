"""QSGD with non-uniformly distributed quantization levels.

The paper (Section 2.3) notes that level placement can be optimized to
minimize variance — the ZipML approach — and reports implementing it
for gradients "but does not observe significant improvement".  This
codec reproduces that variant: levels are placed by Lloyd-Max
iteration on a sample of the normalized magnitudes, then each value is
stochastically rounded between its two neighbouring levels so the
estimator stays unbiased.

Levels are fit per message from a subsample and shipped alongside the
codes (one float32 per level), so the wire format remains
self-contained.

The workspace forms remove the full-tensor temporaries (buckets,
ratios, rounding scratch, packed words); the per-message Lloyd-Max fit
itself still allocates — it runs on a bounded 4096-element sample, so
its footprint is constant, not proportional to the gradient.
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import BucketSumDecoder, EncodedTensor, Quantizer, SumDecoder
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .workspace import EncodeWorkspace

__all__ = ["AdaptiveQsgd", "lloyd_max_levels"]

_SAMPLE_LIMIT = 4096


def lloyd_max_levels(
    magnitudes: np.ndarray, n_levels: int, iterations: int = 12
) -> np.ndarray:
    """Fit ``n_levels`` increasing levels over [0, 1] by Lloyd-Max.

    Level 0 is pinned at 0 and the last level at 1 so that zeros and
    the scale element stay exactly representable.
    """
    if n_levels < 2:
        raise ValueError(f"need at least 2 levels, got {n_levels}")
    values = np.asarray(magnitudes, dtype=np.float64).reshape(-1)
    values = values[np.isfinite(values)]
    levels = np.linspace(0.0, 1.0, n_levels)
    if values.size == 0:
        return levels.astype(np.float32)
    for _ in range(iterations):
        boundaries = (levels[:-1] + levels[1:]) / 2.0
        assignment = np.searchsorted(boundaries, values)
        for index in range(1, n_levels - 1):
            members = values[assignment == index]
            if members.size:
                levels[index] = members.mean()
        levels = np.sort(levels)
        levels[0] = 0.0
        levels[-1] = 1.0
    # deduplicate collapsed levels to keep searchsorted well-defined
    for index in range(1, n_levels):
        if levels[index] <= levels[index - 1]:
            levels[index] = levels[index - 1] + 1e-7
    levels[-1] = max(levels[-1], 1.0)
    return levels.astype(np.float32)


class AdaptiveQsgd(Quantizer):
    """QSGD with Lloyd-Max-placed magnitude levels (sign + magnitude)."""

    requires_error_feedback = False

    def __init__(self, bits: int, bucket_size: int = 512):
        if not 2 <= bits <= 8:
            raise ValueError(
                f"adaptive QSGD supports 2..8 bits, got {bits}"
            )
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self.bits = bits
        self.bucket_size = bucket_size
        self.name = f"aqsgd{bits}"
        self.nominal_bits = float(bits)
        self.n_levels = (1 << (bits - 1))  # magnitude levels incl. zero

    def effective_bucket(self, count: int) -> int:
        return max(1, min(self.bucket_size, count))

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad, dtype=np.float32)
        bucket_size = self.effective_bucket(grad.size)
        plan = bucket_plan(grad.size, bucket_size)
        lanes = (plan.n_buckets, bucket_size)

        buckets = ws.array("aq.buckets", lanes)
        to_buckets_into(grad, bucket_size, buckets)
        magnitude = ws.array("aq.magnitude", lanes)
        np.abs(buckets, out=magnitude)
        scales = ws.array("aq.scales", plan.n_buckets)
        magnitude.max(axis=1, out=scales)
        positive = ws.array("aq.posmask", plan.n_buckets, bool)
        np.greater(scales, 0.0, out=positive)
        safe = ws.array("aq.safe", plan.n_buckets)
        safe.fill(1.0)
        np.copyto(safe, scales, where=positive)
        ratios = ws.array("aq.ratios", lanes)
        np.divide(magnitude, safe[:, None], out=ratios)

        # Lloyd-Max fit on a bounded sample (allocates O(sample), not O(n))
        sample = ratios.reshape(-1)
        if sample.size > _SAMPLE_LIMIT:
            sample = rng.choice(sample, size=_SAMPLE_LIMIT, replace=False)
        levels = lloyd_max_levels(sample, self.n_levels)

        # stochastic rounding between neighbouring fitted levels
        # searchsorted has no out= form; it is the one remaining
        # full-size allocation on this path
        upper = np.searchsorted(levels, ratios, side="left")
        np.clip(upper, 1, self.n_levels - 1, out=upper)
        lower = ws.array("aq.lower", lanes, upper.dtype)
        np.subtract(upper, 1, out=lower)
        low_val = ws.array("aq.low", lanes)
        np.take(levels, lower, out=low_val)
        high_val = ws.array("aq.high", lanes)
        np.take(levels, upper, out=high_val)
        span = high_val  # dead after the max: reuse as span buffer
        np.subtract(high_val, low_val, out=span)
        np.maximum(span, 1e-12, out=span)
        prob = ws.array("aq.prob", lanes)
        np.subtract(ratios, low_val, out=prob)
        np.divide(prob, span, out=prob)
        np.clip(prob, 0.0, 1.0, out=prob)
        rand = ws.array("aq.rand", lanes, np.float64)
        rng.random(out=rand)
        rounded = ws.array("aq.round", lanes, bool)
        np.less(rand, prob, out=rounded)
        chosen = lower
        np.add(lower, rounded, out=chosen)
        codes = ws.array("aq.codes", lanes, np.uint32)
        codes[...] = chosen
        negative = rounded  # bool scratch, reused
        np.less(buckets, 0.0, out=negative)
        np.left_shift(codes, 1, out=codes)
        np.bitwise_or(codes, negative, out=codes)
        zero = ws.array("aq.zeromask", plan.n_buckets, bool)
        np.equal(scales, 0.0, out=zero)
        codes[zero, :] = 0
        words = ws.array(
            "aq.words", bitpack.packed_words(plan.padded, self.bits),
            np.uint32,
        )
        bitpack.pack_into(
            codes.reshape(-1), self.bits, words, workspace=ws, check=False
        )
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "levels": levels, "words": words},
            meta={"bits": self.bits, "bucket_size": bucket_size},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = self._decode_values(message, workspace)
        return from_buckets_into(values, message.shape, out, accumulate)

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> SumDecoder:
        # accumulate in the contiguous bucket layout, un-bucket once
        return BucketSumDecoder(self, shape, workspace)

    def _decode_values(
        self,
        message: EncodedTensor,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decoded bucket matrix, before the bucket-order permutation."""
        ws = workspace if workspace is not None else EncodeWorkspace()
        bits = int(message.meta["bits"])
        bucket_size = int(message.meta["bucket_size"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        levels = np.asarray(message.payload["levels"], dtype=np.float32)
        n_buckets = scales.shape[0]
        lanes = (n_buckets, bucket_size)
        codes = bitpack.unpack_into(
            message.payload["words"],
            n_buckets * bucket_size,
            width=bits,
            workspace=ws,
        ).reshape(lanes)
        ints = ws.array("aq.dec.ints", lanes, np.uint32)
        np.right_shift(codes, 1, out=ints)
        magnitude = ws.array("aq.dec.magnitude", lanes)
        np.take(levels, ints, out=magnitude)
        np.bitwise_and(codes, 1, out=ints)
        values = ws.array("aq.dec.values", lanes)
        values[...] = ints
        # sign = 1 - 2 * signbit; buckets = sign * magnitude * scale
        np.multiply(2.0, values, out=values)
        np.subtract(1.0, values, out=values)
        np.multiply(values, magnitude, out=values)
        np.multiply(values, scales[:, None], out=values)
        return values
