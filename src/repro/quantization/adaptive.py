"""QSGD with non-uniformly distributed quantization levels.

The paper (Section 2.3) notes that level placement can be optimized to
minimize variance — the ZipML approach — and reports implementing it
for gradients "but does not observe significant improvement".  This
codec reproduces that variant: levels are placed by Lloyd-Max
iteration on a sample of the normalized magnitudes, then each value is
stochastically rounded between its two neighbouring levels so the
estimator stays unbiased.

Levels are fit per message from a subsample and shipped alongside the
codes (one float32 per level), so the wire format remains
self-contained.
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import EncodedTensor, Quantizer
from .bucketing import from_buckets, to_buckets

__all__ = ["AdaptiveQsgd", "lloyd_max_levels"]

_SAMPLE_LIMIT = 4096


def lloyd_max_levels(
    magnitudes: np.ndarray, n_levels: int, iterations: int = 12
) -> np.ndarray:
    """Fit ``n_levels`` increasing levels over [0, 1] by Lloyd-Max.

    Level 0 is pinned at 0 and the last level at 1 so that zeros and
    the scale element stay exactly representable.
    """
    if n_levels < 2:
        raise ValueError(f"need at least 2 levels, got {n_levels}")
    values = np.asarray(magnitudes, dtype=np.float64).reshape(-1)
    values = values[np.isfinite(values)]
    levels = np.linspace(0.0, 1.0, n_levels)
    if values.size == 0:
        return levels.astype(np.float32)
    for _ in range(iterations):
        boundaries = (levels[:-1] + levels[1:]) / 2.0
        assignment = np.searchsorted(boundaries, values)
        for index in range(1, n_levels - 1):
            members = values[assignment == index]
            if members.size:
                levels[index] = members.mean()
        levels = np.sort(levels)
        levels[0] = 0.0
        levels[-1] = 1.0
    # deduplicate collapsed levels to keep searchsorted well-defined
    for index in range(1, n_levels):
        if levels[index] <= levels[index - 1]:
            levels[index] = levels[index - 1] + 1e-7
    levels[-1] = max(levels[-1], 1.0)
    return levels.astype(np.float32)


class AdaptiveQsgd(Quantizer):
    """QSGD with Lloyd-Max-placed magnitude levels (sign + magnitude)."""

    requires_error_feedback = False

    def __init__(self, bits: int, bucket_size: int = 512):
        if not 2 <= bits <= 8:
            raise ValueError(
                f"adaptive QSGD supports 2..8 bits, got {bits}"
            )
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self.bits = bits
        self.bucket_size = bucket_size
        self.name = f"aqsgd{bits}"
        self.nominal_bits = float(bits)
        self.n_levels = (1 << (bits - 1))  # magnitude levels incl. zero

    def effective_bucket(self, count: int) -> int:
        return max(1, min(self.bucket_size, count))

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        grad = np.asarray(grad, dtype=np.float32)
        bucket_size = self.effective_bucket(grad.size)
        buckets = to_buckets(grad, bucket_size)
        scales = np.abs(buckets).max(axis=1).astype(np.float32)
        safe = np.where(scales > 0.0, scales, 1.0)[:, None]
        ratios = np.abs(buckets) / safe

        sample = ratios.reshape(-1)
        if sample.size > _SAMPLE_LIMIT:
            sample = rng.choice(sample, size=_SAMPLE_LIMIT, replace=False)
        levels = lloyd_max_levels(sample, self.n_levels)

        # stochastic rounding between neighbouring fitted levels
        upper = np.searchsorted(levels, ratios, side="left")
        upper = np.clip(upper, 1, self.n_levels - 1)
        lower = upper - 1
        low_val = levels[lower]
        high_val = levels[upper]
        span = np.maximum(high_val - low_val, 1e-12)
        prob = np.clip((ratios - low_val) / span, 0.0, 1.0)
        chosen = lower + (rng.random(ratios.shape) < prob)
        chosen = chosen.astype(np.uint32)

        negative = (buckets < 0.0).astype(np.uint32)
        codes = (chosen << 1) | negative
        codes[scales == 0.0, :] = 0
        words = bitpack.pack(codes.reshape(-1), width=self.bits)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "levels": levels, "words": words},
            meta={"bits": self.bits, "bucket_size": bucket_size},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        bits = int(message.meta["bits"])
        bucket_size = int(message.meta["bucket_size"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        levels = np.asarray(message.payload["levels"], dtype=np.float32)
        n_buckets = scales.shape[0]
        codes = bitpack.unpack(
            message.payload["words"], n_buckets * bucket_size, width=bits
        ).reshape(n_buckets, bucket_size)
        magnitude = levels[(codes >> 1)]
        sign = 1.0 - 2.0 * (codes & 1).astype(np.float32)
        buckets = sign * magnitude * scales[:, None]
        return from_buckets(buckets.astype(np.float32), message.shape)
