"""Reshaped 1bitSGD ("1bitSGD*", paper Section 3.2.2).

Identical arithmetic to :class:`~repro.quantization.onebit.OneBitSgd`,
but the gradient is first flattened and regrouped into fixed-size
buckets (the QSGD reshaping technique), so the two scale floats are
amortized over ``bucket_size`` entries regardless of the tensor's
column layout.  This fixes the stock implementation's performance
artefact on convolutional layers, at the cost of a new hyperparameter:
the paper uses bucket size 64 to preserve accuracy.
"""

from __future__ import annotations

import numpy as np

from .base import EncodedTensor, Quantizer
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .onebit import decode_groups_into, encode_groups_into
from .workspace import EncodeWorkspace

__all__ = ["OneBitSgdReshaped"]

DEFAULT_BUCKET_SIZE = 64


class OneBitSgdReshaped(Quantizer):
    """1bitSGD over reshaped buckets instead of matrix columns."""

    nominal_bits = 1.0
    requires_error_feedback = True

    def __init__(self, bucket_size: int = DEFAULT_BUCKET_SIZE):
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self.bucket_size = bucket_size
        self.name = "1bit*"

    def effective_bucket(self, count: int) -> int:
        """Bucket size used for a ``count``-element tensor (capped)."""
        return max(1, min(self.bucket_size, count))

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad, dtype=np.float32)
        bucket_size = self.effective_bucket(grad.size)
        plan = bucket_plan(grad.size, bucket_size)
        buckets = ws.array("1bit*.buckets", (plan.n_buckets, bucket_size))
        to_buckets_into(grad, bucket_size, buckets)
        avg_pos, avg_neg, words = encode_groups_into(
            buckets, valid_count=grad.size, workspace=ws
        )
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={
                "avg_pos": avg_pos,
                "avg_neg": avg_neg,
                "words": words,
            },
            meta={"bucket_size": bucket_size},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        bucket_size = int(message.meta["bucket_size"])
        buckets = decode_groups_into(
            message.payload["avg_pos"],
            message.payload["avg_neg"],
            message.payload["words"],
            group_len=bucket_size,
            workspace=workspace,
        )
        return from_buckets_into(buckets, message.shape, out, accumulate)

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from . import bitpack
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count)
        buckets = bucket_count(count, bucket_size)
        words_per_bucket = bitpack.packed_words(bucket_size, 1)
        return MESSAGE_HEADER_BYTES + buckets * (8 + 4 * words_per_bucket)
