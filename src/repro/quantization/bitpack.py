"""Bit-packing of small integer codes into 32-bit words.

The paper's CNTK artefact packs quantized values into C++ unsigned
integers so that a column of ``n`` 1-bit codes occupies ``ceil(n / 32)``
words (Section 3.2.1).  This module provides the same wire format for
arbitrary code widths from 1 to 32 bits: codes are laid out
little-endian within each word, i.e. code ``i`` occupies bits
``[(i * width) % 32, (i * width) % 32 + width)`` of word
``(i * width) // 32`` when ``width`` divides 32.

Widths that do not divide 32 are rounded up to the next divisor of 32
(e.g. 3-bit codes are stored in 4-bit slots).  This matches the
alignment behaviour of the CNTK kernels, which only ever emit
power-of-two slot widths, and keeps unpacking branch-free.

Hot-path forms: :func:`pack_into` and :func:`unpack_into` validate the
request and dispatch the lane arithmetic to the active kernel backend
(:mod:`repro.quantization.kernels`): compiled loops under numba or the
C extension, the vectorized numpy reference otherwise — all
bit-identical by test.  Lane scratch comes from the caller's
:class:`~repro.quantization.workspace.EncodeWorkspace`, so
steady-state packing performs no allocations with any backend.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .workspace import EncodeWorkspace

__all__ = [
    "slot_width",
    "packed_words",
    "pack",
    "unpack",
    "pack_into",
    "unpack_into",
]

_WORD_BITS = 32
_DIVISORS_OF_32 = (1, 2, 4, 8, 16, 32)

#: width (1..32) -> storage slot width; index 0 is a sentinel.  The
#: divisor scan runs once here instead of on every pack/unpack call.
_SLOT_FOR_WIDTH = (0,) + tuple(
    next(d for d in _DIVISORS_OF_32 if d >= w) for w in range(1, 33)
)
#: slot width -> codes per 32-bit word
_LANES_FOR_SLOT = {slot: _WORD_BITS // slot for slot in _DIVISORS_OF_32}


def slot_width(width: int) -> int:
    """Return the storage slot width for ``width``-bit codes.

    The slot is the smallest divisor of 32 that can hold ``width`` bits,
    so that codes never straddle a word boundary.
    """
    if not 1 <= width <= _WORD_BITS:
        raise ValueError(f"code width must be in [1, 32], got {width}")
    return _SLOT_FOR_WIDTH[width]


def packed_words(count: int, width: int) -> int:
    """Number of uint32 words needed to store ``count`` codes."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    per_word = _LANES_FOR_SLOT[slot_width(width)]
    return -(-count // per_word)  # ceil division


def pack_into(
    codes: np.ndarray,
    width: int,
    out: np.ndarray,
    workspace: EncodeWorkspace | None = None,
    check: bool = True,
) -> np.ndarray:
    """Pack integer codes into the caller-provided uint32 buffer ``out``.

    Args:
        codes: 1-D array of integers, each in ``[0, 2**width)``.
        width: nominal code width in bits.
        out: uint32 buffer of length ``packed_words(len(codes), width)``.
        workspace: arena for any lane scratch (allocates when ``None``).
        check: validate the code range.  Encoders whose codes are
            in-range by construction pass ``False`` to skip the scan.
    """
    codes = np.ascontiguousarray(codes)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
    slot = slot_width(width)
    if check and codes.size:
        limit = 1 << width
        if codes.min() < 0 or codes.max() >= limit:
            raise ValueError(f"codes out of range for width {width}")

    n_words = packed_words(codes.size, width)
    if out.shape != (n_words,) or out.dtype != np.uint32:
        raise ValueError(
            f"out must be uint32 of shape ({n_words},), got "
            f"{out.dtype} {out.shape}"
        )
    return kernels.active().pack(codes, slot, out, workspace)


def unpack_into(
    words: np.ndarray,
    count: int,
    width: int,
    out: np.ndarray | None = None,
    workspace: EncodeWorkspace | None = None,
) -> np.ndarray:
    """Unpack ``count`` codes from ``words`` without fresh allocations.

    With ``out`` given, the codes are copied into it.  Without ``out``,
    returns a contiguous uint32 *view* into the lane scratch (drawn
    from ``workspace`` when provided) that stays valid until the next
    ``unpack_into`` call on the same workspace.
    """
    words = np.ascontiguousarray(words, dtype=np.uint32)
    if words.ndim != 1:
        raise ValueError(f"words must be 1-D, got shape {words.shape}")
    slot = slot_width(width)
    expected = packed_words(count, width)
    if words.size != expected:
        raise ValueError(
            f"expected {expected} words for {count} codes of width {width}, "
            f"got {words.size}"
        )
    return kernels.active().unpack(words, count, slot, workspace, out)


def pack(codes: np.ndarray, width: int) -> np.ndarray:
    """Pack an array of non-negative integer codes into uint32 words.

    Allocating form of :func:`pack_into`.

    Args:
        codes: 1-D array of integers, each in ``[0, 2**width)``.
        width: nominal code width in bits.

    Returns:
        1-D ``uint32`` array of length ``packed_words(len(codes), width)``.
    """
    codes = np.ascontiguousarray(codes)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
    out = np.empty(packed_words(codes.size, width), dtype=np.uint32)
    return pack_into(codes, width, out)


def unpack(words: np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack`.

    Allocating form of :func:`unpack_into`.

    Args:
        words: packed ``uint32`` array.
        count: number of codes originally packed.
        width: nominal code width in bits.

    Returns:
        1-D ``uint32`` array of ``count`` codes.
    """
    out = np.empty(count, dtype=np.uint32)
    return unpack_into(words, count, width, out)
