"""Bit-packing of small integer codes into 32-bit words.

The paper's CNTK artefact packs quantized values into C++ unsigned
integers so that a column of ``n`` 1-bit codes occupies ``ceil(n / 32)``
words (Section 3.2.1).  This module provides the same wire format for
arbitrary code widths from 1 to 32 bits: codes are laid out
little-endian within each word, i.e. code ``i`` occupies bits
``[(i * width) % 32, (i * width) % 32 + width)`` of word
``(i * width) // 32`` when ``width`` divides 32.

Widths that do not divide 32 are rounded up to the next divisor of 32
(e.g. 3-bit codes are stored in 4-bit slots).  This matches the
alignment behaviour of the CNTK kernels, which only ever emit
power-of-two slot widths, and keeps unpacking branch-free.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "slot_width",
    "packed_words",
    "pack",
    "unpack",
]

_WORD_BITS = 32
_DIVISORS_OF_32 = (1, 2, 4, 8, 16, 32)


def slot_width(width: int) -> int:
    """Return the storage slot width for ``width``-bit codes.

    The slot is the smallest divisor of 32 that can hold ``width`` bits,
    so that codes never straddle a word boundary.
    """
    if not 1 <= width <= _WORD_BITS:
        raise ValueError(f"code width must be in [1, 32], got {width}")
    for divisor in _DIVISORS_OF_32:
        if divisor >= width:
            return divisor
    raise AssertionError("unreachable: 32 is a divisor of 32")


def packed_words(count: int, width: int) -> int:
    """Number of uint32 words needed to store ``count`` codes."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    slot = slot_width(width)
    per_word = _WORD_BITS // slot
    return -(-count // per_word)  # ceil division


def pack(codes: np.ndarray, width: int) -> np.ndarray:
    """Pack an array of non-negative integer codes into uint32 words.

    Args:
        codes: 1-D array of integers, each in ``[0, 2**width)``.
        width: nominal code width in bits.

    Returns:
        1-D ``uint32`` array of length ``packed_words(len(codes), width)``.
    """
    codes = np.ascontiguousarray(codes)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
    slot = slot_width(width)
    limit = 1 << width
    if codes.size and (codes.min() < 0 or codes.max() >= limit):
        raise ValueError(f"codes out of range for width {width}")

    per_word = _WORD_BITS // slot
    n_words = packed_words(codes.size, width)
    padded = np.zeros(n_words * per_word, dtype=np.uint32)
    padded[: codes.size] = codes.astype(np.uint32, copy=False)
    lanes = padded.reshape(n_words, per_word)
    shifts = (np.arange(per_word, dtype=np.uint32) * slot).astype(np.uint32)
    return np.bitwise_or.reduce(lanes << shifts, axis=1)


def unpack(words: np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack`.

    Args:
        words: packed ``uint32`` array.
        count: number of codes originally packed.
        width: nominal code width in bits.

    Returns:
        1-D ``uint32`` array of ``count`` codes.
    """
    words = np.ascontiguousarray(words, dtype=np.uint32)
    if words.ndim != 1:
        raise ValueError(f"words must be 1-D, got shape {words.shape}")
    slot = slot_width(width)
    per_word = _WORD_BITS // slot
    expected = packed_words(count, width)
    if words.size != expected:
        raise ValueError(
            f"expected {expected} words for {count} codes of width {width}, "
            f"got {words.size}"
        )
    shifts = (np.arange(per_word, dtype=np.uint32) * slot).astype(np.uint32)
    mask = np.uint32((1 << slot) - 1) if slot < 32 else np.uint32(0xFFFFFFFF)
    lanes = (words[:, None] >> shifts) & mask
    return lanes.reshape(-1)[:count]
