"""Top-k sparse gradient compression (Aji & Heafield, EMNLP 2017).

Discussed in the paper's related-work section: truncate the gradient
to its largest-magnitude ``density`` fraction, accumulate the dropped
coordinates locally (error feedback), and ship (index, value) pairs.
The paper's argument against it on ImageNet-class models — the density
needed for convergence (>10% on Inception) makes index+value pairs
*more* expensive than dense 4-bit QSGD — can be verified directly from
this codec's ``bits_per_element``.
"""

from __future__ import annotations

import numpy as np

from .base import EncodedTensor, Quantizer
from .workspace import EncodeWorkspace

__all__ = ["TopK"]


class TopK(Quantizer):
    """Keep the ``density`` largest-magnitude entries; drop the rest.

    The message carries one int32 index and one float32 value per
    surviving entry (64 bits each), so the wire rate is
    ``64 * density`` bits per element — cheaper than 4-bit QSGD only
    below ~6% density.
    """

    requires_error_feedback = True

    def __init__(self, density: float = 0.01):
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.name = f"topk{density:g}"
        self.nominal_bits = 64.0 * density

    def survivors(self, count: int) -> int:
        """Entries kept for a ``count``-element tensor (at least one)."""
        return max(1, int(self.density * count))

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        # Selection (argpartition/sort) allocates regardless; the
        # workspace only removes the flatten/abs/gather temporaries.
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad, dtype=np.float32)
        flat = grad.reshape(-1)
        if not flat.flags.c_contiguous:
            staged = ws.array("topk.flat", flat.size)
            staged[...] = flat
            flat = staged
        keep = self.survivors(flat.size)
        if keep >= flat.size:
            indices = np.arange(flat.size, dtype=np.int32)
        else:
            magnitude = ws.array("topk.abs", flat.size)
            np.abs(flat, out=magnitude)
            indices = np.argpartition(magnitude, -keep)[-keep:]
            indices = np.sort(indices).astype(np.int32)
        values = ws.array("topk.values", keep)
        np.take(flat, indices, out=values)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"indices": indices, "values": values},
            meta={"density": self.density},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        indices = message.payload["indices"]
        values = message.payload["values"]
        if out.flags.c_contiguous:
            flat = out.reshape(-1)
            if accumulate:
                # indices are unique: += is an exact scatter-add here
                flat[indices] += values
            else:
                flat.fill(0.0)
                flat[indices] = values
            return out
        # strided destination: reshape(-1) would silently copy, so
        # scatter into dense scratch and apply shaped
        ws = workspace if workspace is not None else EncodeWorkspace()
        dense = ws.zeros("topk.dec", out.shape)
        dense.reshape(-1)[indices] = values
        if accumulate:
            out += dense
        else:
            out[...] = dense
        return out

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES

        count = 1
        for dim in shape:
            count *= dim
        return MESSAGE_HEADER_BYTES + 8 * self.survivors(count)
