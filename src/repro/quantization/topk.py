"""Top-k sparse gradient compression (Aji & Heafield, EMNLP 2017).

Discussed in the paper's related-work section: truncate the gradient
to its largest-magnitude ``density`` fraction, accumulate the dropped
coordinates locally (error feedback), and ship (index, value) pairs.
The paper's argument against it on ImageNet-class models — the density
needed for convergence (>10% on Inception) makes index+value pairs
*more* expensive than dense 4-bit QSGD — can be verified directly from
this codec's ``bits_per_element``.
"""

from __future__ import annotations

import numpy as np

from .base import EncodedTensor, Quantizer

__all__ = ["TopK"]


class TopK(Quantizer):
    """Keep the ``density`` largest-magnitude entries; drop the rest.

    The message carries one int32 index and one float32 value per
    surviving entry (64 bits each), so the wire rate is
    ``64 * density`` bits per element — cheaper than 4-bit QSGD only
    below ~6% density.
    """

    requires_error_feedback = True

    def __init__(self, density: float = 0.01):
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.name = f"topk{density:g}"
        self.nominal_bits = 64.0 * density

    def survivors(self, count: int) -> int:
        """Entries kept for a ``count``-element tensor (at least one)."""
        return max(1, int(self.density * count))

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        flat = np.asarray(grad, dtype=np.float32).reshape(-1)
        keep = self.survivors(flat.size)
        if keep >= flat.size:
            indices = np.arange(flat.size, dtype=np.int32)
        else:
            indices = np.argpartition(np.abs(flat), -keep)[-keep:]
            indices = np.sort(indices).astype(np.int32)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"indices": indices, "values": flat[indices]},
            meta={"density": self.density},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        flat = np.zeros(message.element_count, dtype=np.float32)
        flat[message.payload["indices"]] = message.payload["values"]
        return flat.reshape(message.shape)

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES

        count = 1
        for dim in shape:
            count *= dim
        return MESSAGE_HEADER_BYTES + 8 * self.survivors(count)
