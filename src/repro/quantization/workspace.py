"""Reusable scratch-buffer arena for the quantized hot path.

Every synchronous step runs encode → exchange → decode for every
gradient tensor; done naively, each of those stages allocates fresh
numpy arrays (bucket matrices, code planes, packed words, decode
scratch), and the allocator churn — not the arithmetic — dominates the
per-step constant factor for the small matrices that make up most of a
convolutional model.  :class:`EncodeWorkspace` is a shape-keyed arena:
the first request for a ``(tag, shape, dtype)`` triple allocates, every
later request returns the same buffer, so a steady-state training step
performs zero hot-path allocations.

Lifetime contract
-----------------
Buffers are *reused aggressively*: a buffer obtained for ``tag`` is
valid only until the next request for the same ``(tag, shape, dtype)``
triple.  In particular an :class:`~repro.quantization.base.
EncodedTensor` produced by ``encode_into(..., workspace=ws)`` aliases
arena buffers and must be consumed (decoded / byte-counted) before the
next ``encode_into`` call on the same workspace.  The communication
layer honours this by decoding each peer message immediately after
encoding it.

Workspaces are **not** thread-safe; the runtime engines funnel all
exchanges through a single coordinator thread, so one arena per
:class:`~repro.core.algorithm.SynchronousStep` suffices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EncodeWorkspace"]


class EncodeWorkspace:
    """Shape-keyed cache of scratch arrays for encode/decode kernels.

    Attributes:
        hits: number of requests served from the cache.
        misses: number of requests that had to allocate.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self._dtypes: dict[str | tuple, np.dtype] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def array(
        self,
        tag: str | tuple,
        shape: tuple[int, ...] | int,
        dtype=np.float32,
    ) -> np.ndarray:
        """Uninitialized buffer for ``tag``; cached by (tag, shape, dtype).

        Distinct concurrent uses must use distinct tags — the same tag
        with the same shape and dtype always returns the same storage.
        Re-requesting a tag with a *different shape* is legal by design
        (one tag caches one buffer per shape, e.g. per parameter
        matrix); re-requesting a tag with a different *dtype* is almost
        certainly a bug (two unrelated uses colliding on one tag) and
        raises.  Shapes must be tuples of non-negative integers —
        floats, bools and negative dims raise immediately instead of
        surfacing as a confusing numpy error deep in a kernel.

        Validation runs on the allocation path only: a cache hit means
        the identical (tag, shape, dtype) triple already passed it when
        the buffer was inserted, so the steady-state hot path pays one
        dict lookup, nothing more.
        """
        dtype = np.dtype(dtype)
        # numpy integer dims hash and compare equal to plain ints, so
        # the raw-key probe hits the canonical entry without normalizing
        key = (tag, shape, dtype.char)
        buf = self._buffers.get(key)
        if buf is not None:
            self.hits += 1
            return buf

        shape = self._check_shape(shape)
        seen = self._dtypes.get(tag)
        if seen is None:
            self._dtypes[tag] = dtype
        elif seen != dtype:
            raise ValueError(
                f"workspace tag {tag!r} was first requested with dtype "
                f"{seen}, now with {dtype}: distinct concurrent uses "
                f"must use distinct tags"
            )
        key = (tag, shape, dtype.char)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def zeros(
        self,
        tag: str | tuple,
        shape: tuple[int, ...] | int,
        dtype=np.float32,
    ) -> np.ndarray:
        """Like :meth:`array` but zero-filled on every request."""
        buf = self.array(tag, shape, dtype)
        buf.fill(0)
        return buf

    @staticmethod
    def _check_shape(
        shape: tuple[int, ...] | int,
    ) -> tuple[int, ...]:
        """Normalize ``shape`` to a tuple of plain non-negative ints."""
        if isinstance(shape, (int, np.integer)) and not isinstance(
            shape, (bool, np.bool_)
        ):
            shape = (shape,)
        dims = []
        for dim in shape:
            if isinstance(dim, (bool, np.bool_)) or not isinstance(
                dim, (int, np.integer)
            ):
                raise TypeError(
                    f"workspace shape dims must be integers, got "
                    f"{dim!r} in {tuple(shape)!r}"
                )
            if dim < 0:
                raise ValueError(
                    f"workspace shape dims must be >= 0, got "
                    f"{int(dim)} in {tuple(shape)!r}"
                )
            dims.append(int(dim))
        return tuple(dims)

    def clear(self) -> None:
        """Drop every cached buffer (and the hit/miss counters)."""
        self._buffers.clear()
        self._dtypes.clear()
        self.hits = 0
        self.misses = 0
