"""Reusable scratch-buffer arena for the quantized hot path.

Every synchronous step runs encode → exchange → decode for every
gradient tensor; done naively, each of those stages allocates fresh
numpy arrays (bucket matrices, code planes, packed words, decode
scratch), and the allocator churn — not the arithmetic — dominates the
per-step constant factor for the small matrices that make up most of a
convolutional model.  :class:`EncodeWorkspace` is a shape-keyed arena:
the first request for a ``(tag, shape, dtype)`` triple allocates, every
later request returns the same buffer, so a steady-state training step
performs zero hot-path allocations.

Lifetime contract
-----------------
Buffers are *reused aggressively*: a buffer obtained for ``tag`` is
valid only until the next request for the same ``(tag, shape, dtype)``
triple.  In particular an :class:`~repro.quantization.base.
EncodedTensor` produced by ``encode_into(..., workspace=ws)`` aliases
arena buffers and must be consumed (decoded / byte-counted) before the
next ``encode_into`` call on the same workspace.  The communication
layer honours this by decoding each peer message immediately after
encoding it.

Workspaces are **not** thread-safe; the runtime engines funnel all
exchanges through a single coordinator thread, so one arena per
:class:`~repro.core.algorithm.SynchronousStep` suffices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EncodeWorkspace"]


class EncodeWorkspace:
    """Shape-keyed cache of scratch arrays for encode/decode kernels.

    Attributes:
        hits: number of requests served from the cache.
        misses: number of requests that had to allocate.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def array(
        self,
        tag: str | tuple,
        shape: tuple[int, ...] | int,
        dtype=np.float32,
    ) -> np.ndarray:
        """Uninitialized buffer for ``tag``; cached by (tag, shape, dtype).

        Distinct concurrent uses must use distinct tags — the same tag
        with the same shape and dtype always returns the same storage.
        """
        if isinstance(shape, int):
            shape = (shape,)
        key = (tag, shape, np.dtype(dtype).char)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def zeros(
        self,
        tag: str | tuple,
        shape: tuple[int, ...] | int,
        dtype=np.float32,
    ) -> np.ndarray:
        """Like :meth:`array` but zero-filled on every request."""
        buf = self.array(tag, shape, dtype)
        buf.fill(0)
        return buf

    def clear(self) -> None:
        """Drop every cached buffer (and the hit/miss counters)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0
