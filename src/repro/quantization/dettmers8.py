"""Dettmers' 8-bit dynamic-tree quantization (arXiv:1511.04561).

Each value is normalized by its group's maximum absolute value and
mapped to the nearest of 256 *dynamic tree* codes: one sign bit, a
unary movable exponent, and the remaining bits as a linear fraction.
With 7 magnitude bits, a code whose bit string starts with ``e``
leading zeros (``e`` in ``[0, 6]``) represents a value in the decade
``(10^-(e+1), 10^-e]``, subdivided linearly by the ``6 - e`` trailing
fraction bits — so the format spends precision where gradient
magnitudes actually live, covering six orders of magnitude while
keeping ~2 significant decimal digits near 1.0.  Code 0 is an exact
zero and the top code is exactly 1.0; the magnitude map is strictly
monotone in the code, which the property suite pins.

Two normalization variants, as in the paper:

``tree``
    One scale factor for the whole tensor (the scheme name
    ``dettmers8``).
``column``
    One scale factor per matrix column (``dettmers8c``), the
    columnwise-max variant; 0/1-D tensors fall back to a single group.

Encode is a vectorized binary search against the monotone magnitude
table (deterministic nearest-value rounding, ties toward the smaller
magnitude); decode is a single table lookup plus the scale multiply.
Codes ship as one byte per element, so the wire cost is exactly
``header + 4 * groups + padded_count`` bytes.  All arithmetic is plain
numpy — backend bit-identity comes from the shared bucketize kernels
that move values in and out of the group layout.
"""

from __future__ import annotations

import numpy as np

from .base import BucketSumDecoder, EncodedTensor, Quantizer, SumDecoder
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .workspace import EncodeWorkspace

__all__ = ["Dettmers8", "dynamic_tree_values"]

_VARIANTS = ("tree", "column")

#: magnitude bits per code (one bit of the byte is the sign)
_MAG_BITS = 7


def dynamic_tree_values(bits: int = _MAG_BITS + 1) -> np.ndarray:
    """The ``2**(bits-1)`` non-negative values of the dynamic tree.

    Entry ``m`` decodes magnitude code ``m``: 0 is an exact zero, and
    for ``m > 0`` the position of the leading one among the ``bits-1``
    magnitude bits selects the decade ``(10^-(e+1), 10^-e]`` while the
    trailing bits subdivide it linearly.  The table is strictly
    increasing with ``m`` (the monotone code->value law) and its top
    entry is exactly 1.0.
    """
    if not 2 <= bits <= 10:
        raise ValueError(f"bits must be in [2, 10], got {bits}")
    mag_bits = bits - 1
    values = np.zeros(1 << mag_bits, dtype=np.float64)
    for code in range(1, 1 << mag_bits):
        exponent = mag_bits - code.bit_length()  # leading zeros
        frac_bits = mag_bits - 1 - exponent
        fraction = code - (1 << frac_bits)  # strip the leading one
        hi = 10.0 ** -exponent
        lo = 10.0 ** -(exponent + 1)
        values[code] = lo + (fraction + 1) * (hi - lo) / (1 << frac_bits)
    return values.astype(np.float32)


#: the 128 magnitudes of the 8-bit format, ascending
_TREE = dynamic_tree_values()
#: midpoints between adjacent magnitudes: the nearest-value decision
#: boundaries for the vectorized searchsorted encode
_EDGES = ((_TREE[:-1] + _TREE[1:]) / 2.0).astype(np.float64)
#: full signed decode table for all 256 byte codes (high bit = sign)
_DECODE = np.concatenate([_TREE, -_TREE]).astype(np.float32)


class Dettmers8(Quantizer):
    """8-bit dynamic-tree quantization with max scaling."""

    requires_error_feedback = False

    def __init__(self, variant: str = "tree", bucket_size: int | None = None):
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        if bucket_size is not None and bucket_size < 1:
            raise ValueError(
                f"bucket_size must be >= 1, got {bucket_size}"
            )
        self.variant = variant
        self.bucket_size = bucket_size
        self.name = "dettmers8" if variant == "tree" else "dettmers8c"
        self.nominal_bits = 8.0

    def effective_bucket(self, count: int, shape: tuple[int, ...]) -> int:
        """Scaling-group size for a tensor of ``count``/``shape``.

        ``tree`` uses one group for the whole tensor; ``column`` uses
        the first dimension (the column-major flatten makes each group
        exactly one matrix column).  An explicit ``bucket_size``
        overrides both, capped at the tensor size like QSGD's buckets.
        """
        if self.bucket_size is not None:
            return max(1, min(self.bucket_size, count))
        if self.variant == "column" and len(shape) >= 2 and shape[0] > 0:
            return min(shape[0], max(1, count))
        return max(1, count)

    # -- encode ---------------------------------------------------------
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad)
        bucket_size = self.effective_bucket(grad.size, grad.shape)
        plan = bucket_plan(grad.size, bucket_size)
        lanes = (plan.n_buckets, bucket_size)

        buckets = ws.array("dt8.buckets", lanes)
        to_buckets_into(grad, bucket_size, buckets)
        absval = ws.array("dt8.abs", lanes)
        np.abs(buckets, out=absval)
        scales = ws.array("dt8.scales", plan.n_buckets)
        absval.max(axis=1, initial=0.0, out=scales)

        # normalized magnitudes in [0, 1]; empty groups stay all-zero
        norm = ws.array("dt8.norm", lanes, np.float64)
        norm.fill(0.0)
        nonzero = ws.array("dt8.nonzero", plan.n_buckets, bool)
        np.greater(scales, 0.0, out=nonzero)
        np.divide(
            absval, scales[:, None], out=norm, where=nonzero[:, None]
        )

        # nearest dynamic-tree magnitude: searchsorted against the
        # midpoint edges rounds deterministically (a value exactly on
        # an edge takes the smaller magnitude — side='left')
        mag = ws.array("dt8.mag", plan.padded, np.uint8)
        mag_plane = mag.reshape(lanes)
        idx = np.searchsorted(_EDGES, norm.reshape(-1), side="left")
        mag_plane.reshape(-1)[...] = idx

        codes = ws.array("dt8.codes", plan.padded, np.uint8)
        plane = codes.reshape(lanes)
        np.copyto(plane, mag_plane)
        negative = ws.array("dt8.neg", lanes, bool)
        np.signbit(buckets, out=negative)
        # only genuinely non-zero magnitudes carry a sign bit, so -0.0
        # and underflow-to-code-0 entries stay the canonical zero code
        coded = ws.array("dt8.coded", lanes, bool)
        np.greater(mag_plane, 0, out=coded)
        np.logical_and(negative, coded, out=negative)
        np.add(plane, np.uint8(128), out=plane, where=negative)

        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "codes": codes},
            meta={"bucket_size": bucket_size},
        )

    # -- decode ---------------------------------------------------------
    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = self._decode_values(message, workspace)
        return from_buckets_into(values, message.shape, out, accumulate)

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> SumDecoder:
        # accumulate in the contiguous group layout, un-bucket once
        return BucketSumDecoder(self, shape, workspace)

    def _decode_values(
        self,
        message: EncodedTensor,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decoded group matrix, before the bucket-order permutation."""
        ws = workspace if workspace is not None else EncodeWorkspace()
        bucket_size = int(message.meta["bucket_size"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        lanes = (scales.shape[0], bucket_size)
        codes = np.ascontiguousarray(
            message.payload["codes"], dtype=np.uint8
        )
        expected = lanes[0] * lanes[1]
        if codes.ndim != 1 or codes.size != expected:
            raise ValueError(
                f"expected {expected} byte codes for group geometry "
                f"{lanes}, got shape {codes.shape}"
            )
        values = ws.array("dt8.dec.values", lanes)
        np.take(_DECODE, codes.reshape(lanes), out=values)
        values *= scales[:, None]
        return values

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count, shape)
        buckets = bucket_count(count, bucket_size)
        return MESSAGE_HEADER_BYTES + 4 * buckets + buckets * bucket_size
