"""Full-precision (32-bit) identity codec.

This is the paper's baseline: gradients are shipped as raw IEEE-754
single-precision values, so the wire size is ``4 * n`` bytes plus the
message header.
"""

from __future__ import annotations

import numpy as np

from .base import EncodedTensor, Quantizer
from .workspace import EncodeWorkspace

__all__ = ["FullPrecision"]


class FullPrecision(Quantizer):
    """The trivial Encode/Decode pair: ship float32 values verbatim."""

    name = "32bit"
    nominal_bits = 32.0
    requires_error_feedback = False

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        values = np.ascontiguousarray(grad, dtype=np.float32)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"values": values.reshape(-1)},
        )

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        if workspace is None:
            return self.encode(grad, rng)
        grad = np.asarray(grad)
        values = workspace.array("fp.values", grad.size)
        values.reshape(grad.shape)[...] = grad
        return EncodedTensor(
            scheme=self.name, shape=grad.shape, payload={"values": values}
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        values = message.payload["values"]
        return np.asarray(values, dtype=np.float32).reshape(message.shape)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = message.payload["values"].reshape(message.shape)
        if accumulate:
            out += values
        else:
            out[...] = values
        return out

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES

        count = 1
        for dim in shape:
            count *= dim
        return MESSAGE_HEADER_BYTES + 4 * count
