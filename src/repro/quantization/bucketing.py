"""Bucket reshaping shared by QSGD and reshaped 1bitSGD.

The paper (Section 3.2.2) splits the flattened gradient into buckets of
consecutive scalars and quantizes each bucket independently, which
bounds the variance added by quantization: variance grows with the
number of elements sharing one scale factor, so smaller buckets trade
extra scale floats for accuracy.

Matrices are flattened in column-major (Fortran) order so that
consecutive elements of the same column land in the same bucket, as the
paper specifies for its reshaping technique.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

import numpy as np

from . import kernels

__all__ = [
    "bucket_count",
    "bucket_plan",
    "BucketPlan",
    "to_buckets",
    "to_buckets_into",
    "from_buckets",
    "from_buckets_into",
]


def bucket_count(n: int, bucket_size: int) -> int:
    """Number of buckets needed for ``n`` scalars."""
    if bucket_size < 1:
        raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
    if n < 0:
        raise ValueError(f"element count must be >= 0, got {n}")
    return -(-n // bucket_size)


class BucketPlan(NamedTuple):
    """Precomputed bucketing geometry for one (count, bucket_size) pair."""

    count: int  #: real (unpadded) scalar count
    bucket_size: int
    n_buckets: int
    padded: int  #: n_buckets * bucket_size


@lru_cache(maxsize=4096)
def bucket_plan(count: int, bucket_size: int) -> BucketPlan:
    """Cached bucketing plan; hot paths call this instead of re-deriving
    the geometry (and re-validating the arguments) every step."""
    n_buckets = bucket_count(count, bucket_size)
    return BucketPlan(count, bucket_size, n_buckets, n_buckets * bucket_size)


def to_buckets(grad: np.ndarray, bucket_size: int) -> np.ndarray:
    """Flatten ``grad`` column-major and reshape into padded buckets.

    Returns a ``(n_buckets, bucket_size)`` float32 array.  The tail
    bucket is zero-padded; zeros quantize to zero under every scheme in
    this package, so padding never perturbs the reconstruction.
    """
    flat = np.asarray(grad, dtype=np.float32).ravel(order="F")
    n = flat.size
    buckets = bucket_count(n, bucket_size)
    padded = np.zeros(buckets * bucket_size, dtype=np.float32)
    padded[:n] = flat
    return padded.reshape(buckets, bucket_size)


def to_buckets_into(
    grad: np.ndarray, bucket_size: int, out: np.ndarray
) -> np.ndarray:
    """Write the padded bucket matrix of ``grad`` into ``out``.

    ``out`` must be a C-contiguous float32 ``(n_buckets, bucket_size)``
    buffer.  The column-major flatten is a pure permutation copy (the
    F-order ravel of ``grad`` equals the C-order ravel of its
    reversed-axes transpose), dispatched to the active kernel backend:
    a tiled transpose under the compiled backends, a strided numpy
    copy otherwise.  No intermediate arrays are materialized.
    """
    grad = np.asarray(grad)
    return kernels.active().bucketize(grad, out)


def from_buckets(
    buckets: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`to_buckets`: drop padding and restore shape."""
    n = int(np.prod(shape)) if shape else 1
    flat = np.asarray(buckets, dtype=np.float32).reshape(-1)[:n]
    return flat.reshape(shape, order="F")


def from_buckets_into(
    buckets: np.ndarray,
    shape: tuple[int, ...],
    out: np.ndarray,
    accumulate: bool = False,
) -> np.ndarray:
    """Un-bucket into ``out`` of ``shape``; optionally add instead of set.

    With ``accumulate=True`` this fuses decode with the running
    aggregation: ``out += decoded`` is performed as one strided pass,
    elementwise-identical to materializing the decoded tensor first and
    summing (same operand order, same float32 arithmetic).

    ``buckets`` must be C-contiguous; ``out`` may be any (possibly
    strided) float32 view of the destination.  The permutation is
    dispatched to the active kernel backend (a pure copy, so there is
    no arithmetic to keep bit-identical; the accumulate path adds the
    same operands in the same order under every backend).
    """
    return kernels.active().unbucketize(buckets, shape, out, accumulate)
