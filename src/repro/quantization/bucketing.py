"""Bucket reshaping shared by QSGD and reshaped 1bitSGD.

The paper (Section 3.2.2) splits the flattened gradient into buckets of
consecutive scalars and quantizes each bucket independently, which
bounds the variance added by quantization: variance grows with the
number of elements sharing one scale factor, so smaller buckets trade
extra scale floats for accuracy.

Matrices are flattened in column-major (Fortran) order so that
consecutive elements of the same column land in the same bucket, as the
paper specifies for its reshaping technique.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bucket_count", "to_buckets", "from_buckets"]


def bucket_count(n: int, bucket_size: int) -> int:
    """Number of buckets needed for ``n`` scalars."""
    if bucket_size < 1:
        raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
    if n < 0:
        raise ValueError(f"element count must be >= 0, got {n}")
    return -(-n // bucket_size)


def to_buckets(grad: np.ndarray, bucket_size: int) -> np.ndarray:
    """Flatten ``grad`` column-major and reshape into padded buckets.

    Returns a ``(n_buckets, bucket_size)`` float32 array.  The tail
    bucket is zero-padded; zeros quantize to zero under every scheme in
    this package, so padding never perturbs the reconstruction.
    """
    flat = np.asarray(grad, dtype=np.float32).ravel(order="F")
    n = flat.size
    buckets = bucket_count(n, bucket_size)
    padded = np.zeros(buckets * bucket_size, dtype=np.float32)
    padded[:n] = flat
    return padded.reshape(buckets, bucket_size)


def from_buckets(
    buckets: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`to_buckets`: drop padding and restore shape."""
    n = int(np.prod(shape)) if shape else 1
    flat = np.asarray(buckets, dtype=np.float32).reshape(-1)[:n]
    return flat.reshape(shape, order="F")
