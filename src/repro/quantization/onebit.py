"""1bitSGD quantization (Seide et al., Interspeech 2014; paper Section 2.2).

Each quantization group (a matrix column for the stock CNTK scheme, a
bucket for the reshaped variant) is reduced to two scale floats —
``avg+``, the mean of its non-negative entries, and ``avg-``, the mean
of its negative entries — plus one sign bit per entry.  Reconstruction
replaces every entry by the average matching its sign.

The stock CNTK implementation quantizes *per column* of the gradient
matrix, where the first tensor dimension is the row and all remaining
dimensions are flattened onto columns.  On convolutional layers this
yields columns of length 1-3, so the two scale floats per column wipe
out the compression — the performance artefact the paper fixes with
reshaping (Section 3.2.2, "Reshaped 1bitSGD").

1bitSGD is biased, so it must run under :class:`~repro.quantization.base.
ErrorFeedback`; ``requires_error_feedback`` is set accordingly.
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import EncodedTensor, Quantizer

__all__ = ["OneBitSgd", "encode_groups", "decode_groups"]


def _padded_length(group_len: int) -> int:
    """Group length rounded up to a whole number of 32-bit words."""
    return bitpack.packed_words(group_len, 1) * 32


def _valid_mask(
    n_groups: int, group_len: int, valid_count: int | None
) -> np.ndarray:
    """Boolean mask of real (non-padding) positions in a bucket matrix."""
    if valid_count is None or valid_count >= n_groups * group_len:
        return np.ones((n_groups, group_len), dtype=bool)
    flat = np.zeros(n_groups * group_len, dtype=bool)
    flat[:valid_count] = True
    return flat.reshape(n_groups, group_len)


def encode_groups(
    groups: np.ndarray, valid_count: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """1-bit encode a ``(n_groups, group_len)`` matrix of values.

    Returns ``(avg_pos, avg_neg, words)`` where ``avg_pos``/``avg_neg``
    are per-group float32 scale vectors and ``words`` is the packed
    sign-bit payload (one padded word run per group, group-major).

    Args:
        valid_count: total number of real elements when ``groups`` is a
            zero-padded bucket matrix (row-major contiguous).  Padded
            positions are excluded from the averages so they cannot
            dilute the scale factors; their sign bits are still packed
            (the decoder's caller crops them).
    """
    groups = np.asarray(groups, dtype=np.float32)
    if groups.ndim != 2:
        raise ValueError(f"groups must be 2-D, got shape {groups.shape}")
    n_groups, group_len = groups.shape

    positive = groups >= 0.0
    valid = _valid_mask(n_groups, group_len, valid_count)
    pos_valid = positive & valid
    neg_valid = ~positive & valid
    pos_count = pos_valid.sum(axis=1)
    neg_count = neg_valid.sum(axis=1)
    pos_sum = np.where(pos_valid, groups, 0.0).sum(axis=1)
    neg_sum = np.where(neg_valid, groups, 0.0).sum(axis=1)
    avg_pos = np.divide(
        pos_sum,
        pos_count,
        out=np.zeros(n_groups, dtype=np.float32),
        where=pos_count > 0,
    ).astype(np.float32)
    avg_neg = np.divide(
        neg_sum,
        neg_count,
        out=np.zeros(n_groups, dtype=np.float32),
        where=neg_count > 0,
    ).astype(np.float32)

    padded_len = _padded_length(group_len)
    padded = np.zeros((n_groups, padded_len), dtype=np.uint32)
    padded[:, :group_len] = positive
    words = bitpack.pack(padded.reshape(-1), width=1)
    return avg_pos, avg_neg, words


def decode_groups(
    avg_pos: np.ndarray,
    avg_neg: np.ndarray,
    words: np.ndarray,
    group_len: int,
) -> np.ndarray:
    """Inverse of :func:`encode_groups`; returns ``(n_groups, group_len)``."""
    n_groups = avg_pos.shape[0]
    padded_len = _padded_length(group_len)
    bits = bitpack.unpack(words, n_groups * padded_len, width=1)
    positive = bits.reshape(n_groups, padded_len)[:, :group_len].astype(bool)
    return np.where(
        positive, avg_pos[:, None], avg_neg[:, None]
    ).astype(np.float32)


class OneBitSgd(Quantizer):
    """Stock CNTK 1bitSGD: column-wise 1-bit quantization.

    The gradient tensor is viewed as a matrix whose rows are the first
    tensor dimension and whose columns flatten the rest, exactly as
    CNTK lays out objects without dynamic dimensions (Section 3.2.2).
    """

    name = "1bit"
    nominal_bits = 1.0
    requires_error_feedback = True

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        grad = np.asarray(grad, dtype=np.float32)
        rows = grad.shape[0] if grad.ndim else 1
        matrix = grad.reshape(rows, -1)
        # groups are the matrix columns: one (avg+, avg-) pair per column
        avg_pos, avg_neg, words = encode_groups(matrix.T)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={
                "avg_pos": avg_pos,
                "avg_neg": avg_neg,
                "words": words,
            },
            meta={"rows": rows},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        rows = int(message.meta["rows"])
        columns = decode_groups(
            message.payload["avg_pos"],
            message.payload["avg_neg"],
            message.payload["words"],
            group_len=rows,
        )
        return columns.T.reshape(message.shape)

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES

        rows = shape[0] if shape else 1
        count = 1
        for dim in shape:
            count *= dim
        cols = count // rows if rows else 0
        words_per_col = bitpack.packed_words(rows, 1)
        return MESSAGE_HEADER_BYTES + cols * (8 + 4 * words_per_col)
