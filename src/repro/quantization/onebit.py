"""1bitSGD quantization (Seide et al., Interspeech 2014; paper Section 2.2).

Each quantization group (a matrix column for the stock CNTK scheme, a
bucket for the reshaped variant) is reduced to two scale floats —
``avg+``, the mean of its non-negative entries, and ``avg-``, the mean
of its negative entries — plus one sign bit per entry.  Reconstruction
replaces every entry by the average matching its sign.

The stock CNTK implementation quantizes *per column* of the gradient
matrix, where the first tensor dimension is the row and all remaining
dimensions are flattened onto columns.  On convolutional layers this
yields columns of length 1-3, so the two scale floats per column wipe
out the compression — the performance artefact the paper fixes with
reshaping (Section 3.2.2, "Reshaped 1bitSGD").

1bitSGD is biased, so it must run under :class:`~repro.quantization.base.
ErrorFeedback`; ``requires_error_feedback`` is set accordingly.

The ``*_into`` forms draw every intermediate (sign planes, masked
sums, packed words, reconstruction scratch) from an
:class:`~repro.quantization.workspace.EncodeWorkspace`, so the hot
path performs no per-call allocations; the plain forms are thin
wrappers over them.
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import EncodedTensor, Quantizer
from .workspace import EncodeWorkspace

__all__ = ["OneBitSgd", "encode_groups", "decode_groups"]


def _padded_length(group_len: int) -> int:
    """Group length rounded up to a whole number of 32-bit words."""
    return bitpack.packed_words(group_len, 1) * 32


def _masked_row_means(
    groups: np.ndarray,
    select: np.ndarray,
    ws: EncodeWorkspace,
    tag: str,
) -> np.ndarray:
    """Mean of ``groups`` over ``select`` per row (0 for empty rows)."""
    n_groups = groups.shape[0]
    masked = ws.array("1bit.masked", groups.shape)
    masked.fill(0.0)
    np.copyto(masked, groups, where=select)
    sums = ws.array(f"1bit.{tag}.sum", n_groups)
    masked.sum(axis=1, out=sums)
    counts = ws.array(f"1bit.{tag}.count", n_groups, np.int64)
    select.sum(axis=1, out=counts)
    nonempty = ws.array(f"1bit.{tag}.nonempty", n_groups, bool)
    np.greater(counts, 0, out=nonempty)
    means = ws.zeros(f"1bit.{tag}.avg", n_groups)
    np.divide(sums, counts, out=means, where=nonempty)
    return means


def encode_groups_into(
    groups: np.ndarray,
    valid_count: int | None = None,
    workspace: EncodeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """1-bit encode a ``(n_groups, group_len)`` matrix of values.

    Workspace form of :func:`encode_groups`: all three returned arrays
    (and every intermediate) live in the arena when one is provided,
    valid until the next encode on the same workspace.
    """
    ws = workspace if workspace is not None else EncodeWorkspace()
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ValueError(f"groups must be 2-D, got shape {groups.shape}")
    n_groups, group_len = groups.shape

    positive = ws.array("1bit.positive", groups.shape, bool)
    np.greater_equal(groups, 0.0, out=positive)
    full = valid_count is None or valid_count >= n_groups * group_len
    if full:
        pos_valid = positive
        neg_valid = ws.array("1bit.negvalid", groups.shape, bool)
        np.logical_not(positive, out=neg_valid)
    else:
        # zero-padded bucket matrix: exclude padding from the averages
        valid = ws.array("1bit.valid", groups.shape, bool)
        vflat = valid.reshape(-1)
        vflat[:valid_count] = True
        vflat[valid_count:] = False
        pos_valid = ws.array("1bit.posvalid", groups.shape, bool)
        np.logical_and(positive, valid, out=pos_valid)
        neg_valid = ws.array("1bit.negvalid", groups.shape, bool)
        np.logical_not(positive, out=neg_valid)
        np.logical_and(neg_valid, valid, out=neg_valid)
    avg_pos = _masked_row_means(groups, pos_valid, ws, "pos")
    avg_neg = _masked_row_means(groups, neg_valid, ws, "neg")

    padded_len = _padded_length(group_len)
    padded = ws.array("1bit.padded", (n_groups, padded_len), np.uint32)
    padded[:, :group_len] = positive
    padded[:, group_len:] = 0
    words = ws.array(
        "1bit.words", bitpack.packed_words(n_groups * padded_len, 1),
        np.uint32,
    )
    bitpack.pack_into(
        padded.reshape(-1), 1, words, workspace=ws, check=False
    )
    return avg_pos, avg_neg, words


def encode_groups(
    groups: np.ndarray, valid_count: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """1-bit encode a ``(n_groups, group_len)`` matrix of values.

    Returns ``(avg_pos, avg_neg, words)`` where ``avg_pos``/``avg_neg``
    are per-group float32 scale vectors and ``words`` is the packed
    sign-bit payload (one padded word run per group, group-major).

    Args:
        valid_count: total number of real elements when ``groups`` is a
            zero-padded bucket matrix (row-major contiguous).  Padded
            positions are excluded from the averages so they cannot
            dilute the scale factors; their sign bits are still packed
            (the decoder's caller crops them).
    """
    return encode_groups_into(groups, valid_count)


def decode_groups_into(
    avg_pos: np.ndarray,
    avg_neg: np.ndarray,
    words: np.ndarray,
    group_len: int,
    workspace: EncodeWorkspace | None = None,
) -> np.ndarray:
    """Workspace form of :func:`decode_groups`.

    Returns a ``(n_groups, group_len)`` float32 array drawn from the
    arena (valid until the next decode on the same workspace).
    """
    ws = workspace if workspace is not None else EncodeWorkspace()
    n_groups = avg_pos.shape[0]
    padded_len = _padded_length(group_len)
    bits = bitpack.unpack_into(
        words, n_groups * padded_len, width=1, workspace=ws
    )
    sign_bits = bits.reshape(n_groups, padded_len)[:, :group_len]
    positive = ws.array("1bit.dec.positive", (n_groups, group_len), bool)
    np.not_equal(sign_bits, 0, out=positive)
    values = ws.array("1bit.dec.values", (n_groups, group_len))
    values[...] = avg_neg[:, None]
    np.copyto(values, np.broadcast_to(avg_pos[:, None], values.shape),
              where=positive)
    return values


def decode_groups(
    avg_pos: np.ndarray,
    avg_neg: np.ndarray,
    words: np.ndarray,
    group_len: int,
) -> np.ndarray:
    """Inverse of :func:`encode_groups`; returns ``(n_groups, group_len)``."""
    return decode_groups_into(avg_pos, avg_neg, words, group_len).copy()


class OneBitSgd(Quantizer):
    """Stock CNTK 1bitSGD: column-wise 1-bit quantization.

    The gradient tensor is viewed as a matrix whose rows are the first
    tensor dimension and whose columns flatten the rest, exactly as
    CNTK lays out objects without dynamic dimensions (Section 3.2.2).
    """

    name = "1bit"
    nominal_bits = 1.0
    requires_error_feedback = True

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        grad = np.asarray(grad, dtype=np.float32)
        rows = grad.shape[0] if grad.ndim else 1
        # explicit column count: reshape(rows, -1) cannot infer a
        # dimension when the tensor is empty
        cols = grad.size // rows if rows else 0
        matrix = grad.reshape(rows, cols)
        # groups are the matrix columns: one (avg+, avg-) pair per column
        avg_pos, avg_neg, words = encode_groups_into(
            matrix.T, workspace=workspace
        )
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={
                "avg_pos": avg_pos,
                "avg_neg": avg_neg,
                "words": words,
            },
            meta={"rows": rows},
        )

    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        rows = int(message.meta["rows"])
        if out.size == 0:
            return out
        columns = decode_groups_into(
            message.payload["avg_pos"],
            message.payload["avg_neg"],
            message.payload["words"],
            group_len=rows,
            workspace=workspace,
        )
        if out.ndim == 2 and out.shape[0] == rows:
            target = out  # strided 2-D views are written in place
        else:
            target = out.reshape(rows, -1)
        if accumulate:
            target += columns.T
        else:
            target[...] = columns.T
        return out

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES

        rows = shape[0] if shape else 1
        count = 1
        for dim in shape:
            count *= dim
        cols = count // rows if rows else 0
        words_per_col = bitpack.packed_words(rows, 1)
        return MESSAGE_HEADER_BYTES + cols * (8 + 4 * words_per_col)