"""Per-gradient codec routing: passthrough and adaptive bit-widths.

Quantizing tiny gradient matrices costs kernel-launch time without
saving meaningful bandwidth, so the paper's artefact ships matrices
with few elements at full precision, choosing the size threshold such
that *more than 99% of all parameters are still quantized*.

:func:`passthrough_threshold` computes that threshold from a model's
parameter-size inventory, and :class:`QuantizationPolicy` pairs a
quantizer with the threshold to decide per-gradient which codec to use.

:class:`AdaptiveBitWidthPolicy` extends the routing to *per-layer
bit-widths*: the paper's Section 5.1 layer-type study shows
convolutional layers are sensitive to quantization noise while fully
connected layers tolerate 1-2 bits, so the adaptive policy assigns each
named layer its own scheme — high precision for sensitive kinds,
ternary for the fat fc matrices that dominate wire bytes — from a
deterministic derivation over the static parameter inventory,
optionally refined by the measured per-layer encode/wire counters the
telemetry layer collects.  Assignments are frozen at construction and
carried through checkpoints, so resumed (and degraded) runs re-derive
bit-identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .base import EncodedTensor, Quantizer
from .fullprec import FullPrecision
from .workspace import EncodeWorkspace

__all__ = [
    "passthrough_threshold",
    "QuantizationPolicy",
    "AdaptiveBitWidthPolicy",
    "derive_assignments",
    "DEFAULT_KIND_SENSITIVITY",
]

DEFAULT_COVERAGE = 0.99


def passthrough_threshold(
    sizes: Sequence[int], coverage: float = DEFAULT_COVERAGE
) -> int:
    """Largest size threshold that still quantizes ``coverage`` of params.

    Gradients with ``size < threshold`` are sent at full precision.
    The threshold is chosen greedily from the smallest matrices up, so
    the quantized fraction of parameters stays strictly above
    ``coverage``.

    Returns 0 (nothing skipped) for an empty inventory.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    sizes = sorted(int(s) for s in sizes)
    if not sizes:
        return 0
    total = sum(sizes)
    budget = (1.0 - coverage) * total
    skipped = 0
    threshold = 0
    index = 0
    while index < len(sizes):
        # a size class is skipped only if *all* matrices of that size
        # fit in the budget — the threshold test is size-based, so
        # partial classes cannot be excluded
        size = sizes[index]
        end = index
        class_total = 0
        while end < len(sizes) and sizes[end] == size:
            class_total += size
            end += 1
        if skipped + class_total > budget:
            break
        skipped += class_total
        threshold = size + 1
        index = end
    return threshold


@dataclass
class QuantizationPolicy:
    """Route each gradient to the quantizer or the full-precision path.

    Attributes:
        quantizer: codec used for large gradients.
        threshold: gradients with fewer elements than this are sent at
            full precision.  ``0`` disables the passthrough.
    """

    quantizer: Quantizer
    threshold: int = 0

    def __post_init__(self) -> None:
        self.fullprec = FullPrecision()
        self._fullprec = self.fullprec  # backwards-compatible alias

    @classmethod
    def for_model(
        cls,
        quantizer: Quantizer,
        sizes: Sequence[int],
        coverage: float = DEFAULT_COVERAGE,
    ) -> "QuantizationPolicy":
        """Build a policy whose threshold covers ``coverage`` of params."""
        return cls(quantizer, passthrough_threshold(sizes, coverage))

    def codec_for(self, size: int) -> Quantizer:
        """The codec a gradient of ``size`` elements will travel through."""
        if size < self.threshold:
            return self._fullprec
        return self.quantizer

    def codec_for_layer(self, name: str, size: int) -> Quantizer:
        """The codec for the named layer's gradient.

        The static policy routes purely by size; the adaptive subclass
        overrides this with its per-layer assignments.  The step engine
        calls this form so both policies flow through one code path.
        """
        return self.codec_for(size)

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.codec_for(grad.size).encode(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        return self.codec_for(grad.size).encode_into(grad, rng, workspace)

    def decode(self, message: EncodedTensor) -> np.ndarray:
        if message.scheme == self._fullprec.name:
            return self._fullprec.decode(message)
        return self.quantizer.decode(message)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        if message.scheme == self._fullprec.name:
            codec: Quantizer = self._fullprec
        else:
            codec = self.quantizer
        return codec.decode_into(message, out, accumulate, workspace)


#: how sensitive each parameter kind is to aggressive quantization
#: (2 = keep precision, 1 = paper default, 0 = tolerates 1-2 bits) —
#: the ranking measured by the Section 5.1 layer-type study: conv and
#: batch-norm statistics degrade under coarse codecs, fc matrices do
#: not; unknown kinds default to the middle tier
DEFAULT_KIND_SENSITIVITY: dict[str, int] = {
    "conv": 2,
    "bn": 2,
    "bias": 2,
    "rnn": 1,
    "param": 1,
    "fc": 0,
}

#: element count above which a tolerant (tier-0) layer is "fat" enough
#: that pushing it to the 2-bit ternary codec pays for the extra noise
DEFAULT_FAT_LAYER_SIZE = 4096

#: a layer carrying at least this fraction of the measured wire bytes
#: is a bandwidth hot spot the refit drops one precision tier
WIRE_HOTSPOT_SHARE = 0.25

#: a sensitive layer below this measured wire share is promoted to
#: full precision outright — its bytes are noise on the wire
WIRE_NEGLIGIBLE_SHARE = 0.01

#: precision ladder the refit moves along, highest precision first
_PRECISION_LADDER = ("32bit", "qsgd8", "qsgd4", "terngrad")


def derive_assignments(
    inventory: Sequence[tuple[str, int, str]],
    threshold: int,
    default_scheme: str = "qsgd4",
    sensitivity: Mapping[str, int] | None = None,
    profiles: Mapping[str, Mapping[str, int]] | None = None,
    fat_size: int = DEFAULT_FAT_LAYER_SIZE,
) -> dict[str, str]:
    """Deterministic per-layer scheme assignment.

    Args:
        inventory: ``(name, size, kind)`` triples for every parameter.
        threshold: the passthrough threshold; smaller layers ship at
            full precision exactly as the static policy would.
        default_scheme: scheme for middle-tier layers (normally the
            run's configured scheme).
        sensitivity: kind -> tier override of
            :data:`DEFAULT_KIND_SENSITIVITY`.
        profiles: optional *measured* per-layer counters (the
            ``layer_profile()`` of :class:`repro.telemetry.Counters`):
            layers whose measured wire share reaches
            :data:`WIRE_HOTSPOT_SHARE` are dropped one precision tier,
            and sensitive layers whose share is below
            :data:`WIRE_NEGLIGIBLE_SHARE` are promoted to full
            precision.  The derivation touches profiles only through
            per-name lookups and a sorted-order total, so any dict
            ordering of the same counters yields the same assignment.
        fat_size: element count above which tier-0 layers go ternary.

    Returns a ``name -> scheme`` dict over the full inventory, built in
    sorted-name order (purely cosmetic: the mapping is keyed, so the
    derivation is order-independent by construction).
    """
    ranks = dict(DEFAULT_KIND_SENSITIVITY)
    if sensitivity:
        ranks.update(sensitivity)
    total_wire = 0
    if profiles:
        total_wire = sum(
            int(profiles[name].get("wire_bytes", 0))
            for name in sorted(profiles)
        )
    assignments: dict[str, str] = {}
    for name, size, kind in sorted(
        (str(n), int(s), str(k)) for n, s, k in inventory
    ):
        if size < threshold:
            assignments[name] = "32bit"
            continue
        tier = ranks.get(kind, 1)
        if tier >= 2:
            scheme = "qsgd8" if default_scheme != "32bit" else "32bit"
        elif tier <= 0 and size >= fat_size:
            scheme = "terngrad"
        else:
            scheme = default_scheme
        if profiles and total_wire > 0 and name in profiles:
            share = (
                int(profiles[name].get("wire_bytes", 0)) / total_wire
            )
            if share >= WIRE_HOTSPOT_SHARE and tier < 2:
                scheme = _drop_precision(scheme)
            elif share <= WIRE_NEGLIGIBLE_SHARE and tier >= 2:
                scheme = "32bit"
        assignments[name] = scheme
    return assignments


def _drop_precision(scheme: str) -> str:
    """One step down the precision ladder (saturating at ternary)."""
    if scheme in _PRECISION_LADDER:
        index = _PRECISION_LADDER.index(scheme)
        return _PRECISION_LADDER[min(index + 1, len(_PRECISION_LADDER) - 1)]
    return "terngrad"


@dataclass
class AdaptiveBitWidthPolicy(QuantizationPolicy):
    """Per-layer bit-width selection over a frozen assignment table.

    Attributes:
        quantizer: the run's configured codec — the middle tier of the
            assignment ladder and the fallback for unassigned streams.
        threshold: small-matrix passthrough, as in the static policy.
        inventory: ``(name, size, kind)`` triples the assignments were
            derived from (kept so :meth:`refit` can re-derive).
        assignments: layer name -> scheme name.  Frozen for the life of
            the policy: the in-run routing never moves mid-trajectory,
            which is what keeps resumed and degraded runs bit-identical.
            Checkpoints persist this table verbatim.
    """

    inventory: tuple[tuple[str, int, str], ...] = ()
    assignments: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.inventory = tuple(
            (str(n), int(s), str(k)) for n, s, k in self.inventory
        )
        if not self.assignments:
            self.assignments = derive_assignments(
                self.inventory, self.threshold,
                default_scheme=self.quantizer.name,
            )
        # one codec instance per assigned scheme, shared across layers
        # so workspace scratch and bucket plans are reused
        self._codecs: dict[str, Quantizer] = {
            self.quantizer.name: self.quantizer,
            self._fullprec.name: self._fullprec,
        }

    @classmethod
    def for_layers(
        cls,
        quantizer: Quantizer,
        inventory: Sequence[tuple[str, int, str]],
        coverage: float = DEFAULT_COVERAGE,
        sensitivity: Mapping[str, int] | None = None,
        profiles: Mapping[str, Mapping[str, int]] | None = None,
    ) -> "AdaptiveBitWidthPolicy":
        """Derive a policy from a model's named parameter inventory."""
        inventory = tuple(
            (str(n), int(s), str(k)) for n, s, k in inventory
        )
        threshold = passthrough_threshold(
            [size for _, size, _ in inventory], coverage
        )
        assignments = derive_assignments(
            inventory, threshold,
            default_scheme=quantizer.name,
            sensitivity=sensitivity,
            profiles=profiles,
        )
        return cls(quantizer, threshold, inventory, assignments)

    def refit(
        self, profiles: Mapping[str, Mapping[str, int]]
    ) -> "AdaptiveBitWidthPolicy":
        """A new policy re-derived from measured per-layer counters.

        Refitting never mutates this policy — the live trajectory keeps
        its frozen table; the caller decides when (between runs, never
        mid-run) to adopt the refitted one.  The derivation is a pure
        function of the counters, so identical measurements always
        produce identical assignments.
        """
        threshold = self.threshold
        assignments = derive_assignments(
            self.inventory, threshold,
            default_scheme=self.quantizer.name,
            profiles=profiles,
        )
        return AdaptiveBitWidthPolicy(
            self.quantizer, threshold, self.inventory, assignments
        )

    def scheme_for_layer(self, name: str, size: int) -> str:
        """The scheme name the layer's gradient will travel as."""
        return self.codec_for_layer(name, size).name

    def codec_for_layer(self, name: str, size: int) -> Quantizer:
        scheme = self.assignments.get(name)
        if scheme is None:
            return self.codec_for(size)
        return self._codec(scheme)

    def _codec(self, scheme: str) -> Quantizer:
        codec = self._codecs.get(scheme)
        if codec is None:
            from . import make_quantizer

            codec = make_quantizer(scheme)
            self._codecs[scheme] = codec
        return codec

    # the adaptive wire carries several schemes, so decode dispatches
    # on the message's scheme tag instead of assuming the one quantizer
    def decode(self, message: EncodedTensor) -> np.ndarray:
        return self._codec(message.scheme).decode(message)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        return self._codec(message.scheme).decode_into(
            message, out, accumulate, workspace
        )
