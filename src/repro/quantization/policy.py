"""Small-matrix passthrough policy (paper Section 3.2.2).

Quantizing tiny gradient matrices costs kernel-launch time without
saving meaningful bandwidth, so the paper's artefact ships matrices
with few elements at full precision, choosing the size threshold such
that *more than 99% of all parameters are still quantized*.

:func:`passthrough_threshold` computes that threshold from a model's
parameter-size inventory, and :class:`QuantizationPolicy` pairs a
quantizer with the threshold to decide per-gradient which codec to use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .base import EncodedTensor, Quantizer
from .fullprec import FullPrecision
from .workspace import EncodeWorkspace

__all__ = ["passthrough_threshold", "QuantizationPolicy"]

DEFAULT_COVERAGE = 0.99


def passthrough_threshold(
    sizes: Sequence[int], coverage: float = DEFAULT_COVERAGE
) -> int:
    """Largest size threshold that still quantizes ``coverage`` of params.

    Gradients with ``size < threshold`` are sent at full precision.
    The threshold is chosen greedily from the smallest matrices up, so
    the quantized fraction of parameters stays strictly above
    ``coverage``.

    Returns 0 (nothing skipped) for an empty inventory.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    sizes = sorted(int(s) for s in sizes)
    if not sizes:
        return 0
    total = sum(sizes)
    budget = (1.0 - coverage) * total
    skipped = 0
    threshold = 0
    index = 0
    while index < len(sizes):
        # a size class is skipped only if *all* matrices of that size
        # fit in the budget — the threshold test is size-based, so
        # partial classes cannot be excluded
        size = sizes[index]
        end = index
        class_total = 0
        while end < len(sizes) and sizes[end] == size:
            class_total += size
            end += 1
        if skipped + class_total > budget:
            break
        skipped += class_total
        threshold = size + 1
        index = end
    return threshold


@dataclass
class QuantizationPolicy:
    """Route each gradient to the quantizer or the full-precision path.

    Attributes:
        quantizer: codec used for large gradients.
        threshold: gradients with fewer elements than this are sent at
            full precision.  ``0`` disables the passthrough.
    """

    quantizer: Quantizer
    threshold: int = 0

    def __post_init__(self) -> None:
        self.fullprec = FullPrecision()
        self._fullprec = self.fullprec  # backwards-compatible alias

    @classmethod
    def for_model(
        cls,
        quantizer: Quantizer,
        sizes: Sequence[int],
        coverage: float = DEFAULT_COVERAGE,
    ) -> "QuantizationPolicy":
        """Build a policy whose threshold covers ``coverage`` of params."""
        return cls(quantizer, passthrough_threshold(sizes, coverage))

    def codec_for(self, size: int) -> Quantizer:
        """The codec a gradient of ``size`` elements will travel through."""
        if size < self.threshold:
            return self._fullprec
        return self.quantizer

    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.codec_for(grad.size).encode(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        return self.codec_for(grad.size).encode_into(grad, rng, workspace)

    def decode(self, message: EncodedTensor) -> np.ndarray:
        if message.scheme == self._fullprec.name:
            return self._fullprec.decode(message)
        return self.quantizer.decode(message)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        if message.scheme == self._fullprec.name:
            codec: Quantizer = self._fullprec
        else:
            codec = self.quantizer
        return codec.decode_into(message, out, accumulate, workspace)
