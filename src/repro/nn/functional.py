"""Stateless tensor ops: im2col/col2im and numerically safe softmax."""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_size", "softmax", "log_softmax"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"window (k={kernel}, s={stride}, p={pad}) does not fit "
            f"input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into convolution columns.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    if pad:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    # strided window view: (N, C, out_h, out_w, kernel, kernel)
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel * kernel
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW gradient (im2col adjoint)."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    windows = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :,
                :,
                ki : ki + out_h * stride : stride,
                kj : kj + out_w * stride : stride,
            ] += windows[:, :, :, :, ki, kj]
    if pad:
        return padded[:, :, pad : pad + h, pad : pad + w]
    return padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
