"""Weight initializers used by the model zoo."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "orthogonal"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (out_ch, in_ch, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    n = int(np.prod(shape))
    return n, n


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, the standard choice before ReLU."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def orthogonal(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Orthogonal initialization for recurrent weight matrices."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal init needs a 2-D shape, got {shape}")
    a = rng.normal(size=(max(shape), min(shape)))
    q, _ = np.linalg.qr(a)
    q = q[: shape[0], : shape[1]] if q.shape != shape else q
    if q.shape != shape:
        q = q.T[: shape[0], : shape[1]]
    return q.astype(np.float32)
