"""LSTM layer with explicit backward-through-time.

The paper's speech workload is a 3-layer LSTM network on AN4
(Section 4.2); :class:`Lstm` is the recurrent building block of its
scaled-down analogue.  Input is (N, T, D), output is the full hidden
sequence (N, T, H); :class:`TakeLast` extracts the final step for
sequence classification heads.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter

__all__ = ["Lstm", "TakeLast"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class Lstm(Module):
    """Single-layer LSTM.

    Gate pre-activations are computed jointly as ``x @ Wx + h @ Wh + b``
    with the 4H columns split in (input, forget, output, candidate)
    order.  The forget-gate bias is initialized to 1, the standard
    trick to let gradients flow early in training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        name: str,
        rng: np.random.Generator,
    ):
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.wx = Parameter(
            f"{name}.Wx",
            init.glorot_uniform((input_size, 4 * h), rng),
            kind="rnn",
        )
        self.wh = Parameter(
            f"{name}.Wh",
            init.glorot_uniform((h, 4 * h), rng),
            kind="rnn",
        )
        bias = np.zeros(4 * h, dtype=np.float32)
        bias[h : 2 * h] = 1.0  # forget-gate bias
        self.bias = Parameter(f"{name}.b", bias, kind="bias")
        self._cache: list[tuple] | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, t, d = x.shape
        if d != self.input_size:
            raise ValueError(
                f"expected input size {self.input_size}, got {d}"
            )
        h_size = self.hidden_size
        h = np.zeros((n, h_size), dtype=x.dtype)
        c = np.zeros((n, h_size), dtype=x.dtype)
        outputs = np.empty((n, t, h_size), dtype=x.dtype)
        cache: list[tuple] = []
        for step in range(t):
            x_t = x[:, step, :]
            gates = x_t @ self.wx.data + h @ self.wh.data + self.bias.data
            i = _sigmoid(gates[:, :h_size])
            f = _sigmoid(gates[:, h_size : 2 * h_size])
            o = _sigmoid(gates[:, 2 * h_size : 3 * h_size])
            g = np.tanh(gates[:, 3 * h_size :])
            c_next = f * c + i * g
            tanh_c = np.tanh(c_next)
            h_next = o * tanh_c
            if training:
                cache.append((x_t, h, c, i, f, o, g, tanh_c))
            h, c = h_next, c_next
            outputs[:, step, :] = h
        self._cache = cache if training else None
        self._x_shape = x.shape
        return outputs

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        n, t, _ = self._x_shape
        h_size = self.hidden_size
        dx = np.zeros(self._x_shape, dtype=dout.dtype)
        dh_next = np.zeros((n, h_size), dtype=dout.dtype)
        dc_next = np.zeros((n, h_size), dtype=dout.dtype)
        for step in reversed(range(t)):
            x_t, h_prev, c_prev, i, f, o, g, tanh_c = self._cache[step]
            dh = dout[:, step, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dgates = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g * g),
                ],
                axis=1,
            )
            self.wx.grad += x_t.T @ dgates
            self.wh.grad += h_prev.T @ dgates
            self.bias.grad += dgates.sum(axis=0)
            dx[:, step, :] = dgates @ self.wx.data.T
            dh_next = dgates @ self.wh.data.T
            dc_next = dc * f
        return dx


class TakeLast(Module):
    """Select the final time step: (N, T, H) -> (N, H)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        dx = np.zeros(self._shape, dtype=dout.dtype)
        dx[:, -1, :] = dout
        return dx
