"""Model checkpointing: save/load parameters as compressed npz."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Write all parameters of ``model`` to an ``.npz`` checkpoint."""
    arrays = {p.name: p.data for p in model.parameters()}
    if not arrays:
        raise ValueError("model has no parameters to save")
    np.savez_compressed(path, **arrays)


def load_model(model: Module, path: str | os.PathLike) -> None:
    """Load a checkpoint into ``model`` (shapes and names must match)."""
    with np.load(path) as archive:
        stored = set(archive.files)
        params = model.parameters()
        expected = {p.name for p in params}
        if stored != expected:
            missing = sorted(expected - stored)
            extra = sorted(stored - expected)
            raise ValueError(
                f"checkpoint does not match model: missing={missing}, "
                f"unexpected={extra}"
            )
        for param in params:
            data = archive[param.name]
            if data.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: checkpoint "
                    f"{data.shape} vs model {param.data.shape}"
                )
            param.data = data.astype(np.float32)
