"""Module system for the numpy deep-learning substrate.

This package stands in for CNTK + cuDNN: enough of a deep-learning
framework to train the scaled-down analogues of the paper's networks
with real forward/backward passes.  Layers are explicit about their
backward computation (no tape autograd), which keeps the gradient
data-flow — the thing the paper quantizes — easy to inspect and test.

Conventions:
    * images are NCHW float32; sequences are (N, T, D);
    * ``forward`` caches whatever ``backward`` needs;
    * ``backward`` receives d(loss)/d(output), **accumulates** into each
      parameter's ``grad``, and returns d(loss)/d(input).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    Attributes:
        name: unique name within the model; used as the communication
            stream key by the trainer.
        data: current value, float32.
        grad: accumulated gradient, float32, same shape as ``data``.
        kind: layer-type tag ("fc", "conv", "bn", "rnn", "bias",
            "param") used by layer-selective quantization (the paper's
            Section 5.1 "Impact of Layer Types" analysis).
    """

    def __init__(self, name: str, data: np.ndarray, kind: str = "param"):
        self.name = name
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.kind = kind

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for layers and models."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, in a stable order.

        The default implementation collects :class:`Parameter`
        attributes and recurses into :class:`Module` attributes and
        lists thereof, in attribute insertion order.
        """
        found: list[Parameter] = []
        for value in self.__dict__.values():
            found.extend(_collect_parameters(value))
        return found

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def forward(
        self, x: np.ndarray, training: bool = True
    ) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


def _collect_parameters(value: object) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_parameters(item)


class Sequential(Module):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout
