"""Numpy deep-learning substrate (stands in for CNTK + cuDNN)."""

from .functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    softmax,
)
from .layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .loss import accuracy, softmax_cross_entropy, top_k_accuracy
from .module import Module, Parameter, Sequential
from .rnn import Lstm, TakeLast
from .serialization import load_model, save_model

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Conv2d",
    "BatchNorm",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Lstm",
    "TakeLast",
    "softmax",
    "log_softmax",
    "im2col",
    "col2im",
    "conv_output_size",
    "softmax_cross_entropy",
    "accuracy",
    "top_k_accuracy",
    "save_model",
    "load_model",
]
