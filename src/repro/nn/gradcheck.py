"""Numerical gradient checking for layers and models.

Used by the test suite to verify every layer's hand-written backward
against central finite differences.  Checks run in float64: layers are
dtype-preserving, so upcasting the input and parameters removes the
fp32 rounding noise that would otherwise swamp small true gradients
(e.g. batch normalization's near-shift-invariant input gradient).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module

__all__ = ["numerical_gradient", "check_layer_gradients"]


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f(x)
        x[idx] = original - eps
        f_minus = f(x)
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    seed_dout: int = 0,
) -> dict[str, float]:
    """Compare analytic and numerical gradients for one layer.

    Uses the scalar probe ``sum(forward(x) * r)`` with a fixed random
    ``r``, whose gradient w.r.t. the output is exactly ``r``.
    Parameters are temporarily upcast to float64 for the duration of
    the check.

    Returns a mapping of max absolute errors (keys: "input" and each
    parameter name) and raises ``AssertionError`` on mismatch.
    """
    x = np.asarray(x, dtype=np.float64)
    params = layer.parameters()
    saved_dtypes = [p.data.dtype for p in params]
    for param in params:
        param.data = param.data.astype(np.float64)
        param.grad = param.grad.astype(np.float64)
    try:
        return _run_check(layer, x, rtol, atol, seed_dout)
    finally:
        for param, dtype in zip(params, saved_dtypes):
            param.data = param.data.astype(dtype)
            param.grad = param.grad.astype(dtype)


def _run_check(
    layer: Module,
    x: np.ndarray,
    rtol: float,
    atol: float,
    seed_dout: int,
) -> dict[str, float]:
    rng = np.random.default_rng(seed_dout)
    out = layer.forward(x.copy(), training=True)
    r = rng.normal(size=out.shape)

    layer.zero_grad()
    layer.forward(x.copy(), training=True)
    dx = layer.backward(r.copy())

    errors: dict[str, float] = {}

    def probe_input(values: np.ndarray) -> float:
        return float((layer.forward(values, training=True) * r).sum())

    num_dx = numerical_gradient(probe_input, x.copy())
    np.testing.assert_allclose(dx, num_dx, rtol=rtol, atol=atol)
    errors["input"] = float(np.abs(dx - num_dx).max())

    for param in layer.parameters():
        analytic = param.grad.copy()

        def probe_param(values: np.ndarray) -> float:
            saved = param.data
            param.data = values
            result = float((layer.forward(x.copy(), training=True) * r).sum())
            param.data = saved
            return result

        num = numerical_gradient(probe_param, param.data.copy())
        np.testing.assert_allclose(analytic, num, rtol=rtol, atol=atol)
        errors[param.name] = float(np.abs(analytic - num).max())
    return errors
