"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: scales at train time, identity at eval time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        self._mask = mask
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
