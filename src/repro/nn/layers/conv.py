"""2-D convolution via im2col, with full backward."""

from __future__ import annotations

import numpy as np

from .. import init
from ..functional import col2im, im2col
from ..module import Module, Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Square-kernel 2-D convolution on NCHW inputs.

    Weights are stored ``(out_channels, in_channels, k, k)``.  Under
    the CNTK matrix view (first dim = rows, rest flattened to columns)
    the gradient matrix has only ``out_channels`` rows per column group
    — CNTK's actual layout yields columns of length 1-3 on conv
    kernels, which is the stock-1bitSGD artefact; the paper-scale shape
    inventory in :mod:`repro.models.specs` captures the real layout.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        name: str,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad if pad is not None else kernel // 2
        self.weight = Parameter(
            f"{name}.W",
            init.he_normal((out_channels, in_channels, kernel, kernel), rng),
            kind="conv",
        )
        self.bias = (
            Parameter(f"{name}.b", init.zeros((out_channels,)), kind="bias")
            if bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        cols, (out_h, out_w) = im2col(x, self.kernel, self.stride, self.pad)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w2.T  # (N*oh*ow, out_ch)
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )
        self._cache = (x.shape, cols) if training else None
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        x_shape, cols = self._cache
        n, _, out_h, out_w = dout.shape
        d2 = dout.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.weight.grad += (d2.T @ cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += d2.sum(axis=0)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        dcols = d2 @ w2
        return col2im(dcols, x_shape, self.kernel, self.stride, self.pad)
