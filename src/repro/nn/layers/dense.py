"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter

__all__ = ["Dense"]


class Dense(Module):
    """Affine map ``y = x @ W + b`` over the last axis.

    The weight is stored as ``(in_features, out_features)``.  For the
    CNTK column-quantization semantics the trainer views the gradient
    with rows = first dimension, so dense weights expose long columns
    (of length ``in_features``) — the layer type 1bitSGD compresses
    well (paper Section 3.2.2).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            f"{name}.W",
            init.he_normal((in_features, out_features), rng),
            kind="fc",
        )
        self.bias = (
            Parameter(f"{name}.b", init.zeros((out_features,)), kind="bias")
            if bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._x = x if training else None
        y = x @ self.weight.data
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward")
        x = self._x
        # flatten any leading batch axes for the weight gradient
        x2 = x.reshape(-1, self.in_features)
        d2 = dout.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ d2
        if self.bias is not None:
            self.bias.grad += d2.sum(axis=0)
        return dout @ self.weight.data.T
