"""Batch normalization (the "BN" in BN-Inception)."""

from __future__ import annotations

import numpy as np

from ..module import Module, Parameter

__all__ = ["BatchNorm"]


class BatchNorm(Module):
    """Batch normalization over the channel axis.

    Works on both (N, C) dense activations and (N, C, H, W) feature
    maps; statistics are computed per channel over all other axes.
    Keeps running estimates for evaluation mode.
    """

    def __init__(
        self,
        channels: int,
        name: str,
        momentum: float = 0.9,
        eps: float = 1e-5,
    ):
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(
            f"{name}.gamma", np.ones(channels, dtype=np.float32),
            kind="bn",
        )
        self.beta = Parameter(
            f"{name}.beta", np.zeros(channels, dtype=np.float32),
            kind="bn",
        )
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    @staticmethod
    def _expand(v: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return v[None, :]
        return v[None, :, None, None]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean
                + (1.0 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var
                + (1.0 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._expand(mean, x.ndim)) * self._expand(
            inv_std, x.ndim
        )
        out = self._expand(self.gamma.data, x.ndim) * x_hat + self._expand(
            self.beta.data, x.ndim
        )
        if training:
            self._cache = (x_hat, inv_std, axes, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        x_hat, inv_std, axes, x_shape = self._cache
        m = np.prod([x_shape[a] for a in axes])
        self.gamma.grad += (dout * x_hat).sum(axis=axes)
        self.beta.grad += dout.sum(axis=axes)
        gamma = self._expand(self.gamma.data, dout.ndim)
        dxhat = dout * gamma
        # standard batchnorm backward, vectorized over channels
        term1 = dxhat
        term2 = dxhat.mean(axis=axes, keepdims=True)
        term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        inv = self._expand(inv_std, dout.ndim)
        return inv * (term1 - term2 - term3)
