"""Flatten feature maps to vectors."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return dout.reshape(self._shape)
