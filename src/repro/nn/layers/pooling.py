"""Spatial pooling layers on NCHW inputs."""

from __future__ import annotations

import numpy as np

from ..functional import conv_output_size
from ..module import Module

__all__ = ["MaxPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Non-overlapping-friendly max pooling (square window)."""

    def __init__(self, kernel: int, stride: int | None = None):
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self._cache: tuple | None = None

    def _windows(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        out_h = conv_output_size(h, self.kernel, self.stride, 0)
        out_w = conv_output_size(w, self.kernel, self.stride, 0)
        sn, sc, sh, sw = x.strides
        return np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, self.kernel, self.kernel),
            strides=(sn, sc, sh * self.stride, sw * self.stride, sh, sw),
            writeable=False,
        )

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        windows = self._windows(x)
        n, c, out_h, out_w = windows.shape[:4]
        flat = windows.reshape(n, c, out_h, out_w, -1)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, argmax) if training else None
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        x_shape, argmax = self._cache
        n, c, h, w = x_shape
        out_h, out_w = argmax.shape[2:]
        dx = np.zeros(x_shape, dtype=dout.dtype)
        ki = argmax // self.kernel
        kj = argmax % self.kernel
        oh = np.arange(out_h)[None, None, :, None]
        ow = np.arange(out_w)[None, None, None, :]
        rows = oh * self.stride + ki
        cols = ow * self.stride + kj
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        np.add.at(dx, (nn, cc, rows, cols), dout)
        return dx


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward")
        n, c, h, w = self._shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            dout[:, :, None, None] * scale, self._shape
        ).astype(dout.dtype)
