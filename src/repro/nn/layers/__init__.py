"""Layer catalogue for the numpy substrate."""

from .activation import ReLU, Sigmoid, Tanh
from .conv import Conv2d
from .dense import Dense
from .dropout import Dropout
from .flatten import Flatten
from .norm import BatchNorm
from .pooling import GlobalAvgPool2d, MaxPool2d

__all__ = [
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Conv2d",
    "Dense",
    "Dropout",
    "Flatten",
    "BatchNorm",
    "GlobalAvgPool2d",
    "MaxPool2d",
]
