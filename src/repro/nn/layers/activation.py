"""Pointwise activation layers."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0.0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward")
        return dout * self._mask


class Tanh(Module):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before a training forward")
        return dout * (1.0 - self._y * self._y)


class Sigmoid(Module):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y = 1.0 / (1.0 + np.exp(-x))
        self._y = y if training else None
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before a training forward")
        return dout * self._y * (1.0 - self._y)
