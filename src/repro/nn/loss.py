"""Losses and classification metrics."""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, softmax

__all__ = ["softmax_cross_entropy", "accuracy", "top_k_accuracy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Args:
        logits: (N, C) unnormalized scores.
        labels: (N,) integer class labels.

    Returns:
        ``(loss, dlogits)`` where ``dlogits`` already includes the
        ``1/N`` mean factor, so the backward pass yields the gradient
        of the *mean* loss (matching CNTK's per-sample normalization).
    """
    n = logits.shape[0]
    logp = log_softmax(logits, axis=1)
    loss = -float(logp[np.arange(n), labels].mean())
    dlogits = softmax(logits, axis=1)
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits.astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    return float((logits.argmax(axis=1) == labels).mean())


def top_k_accuracy(
    logits: np.ndarray, labels: np.ndarray, k: int = 5
) -> float:
    """Top-k accuracy in [0, 1] (the paper reports top-5 on ImageNet)."""
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())
