"""Discrete-event timeline of one MPI gradient exchange.

The closed-form model in :mod:`repro.simulator.epoch` costs the
exchange as ``max(comm, quant) + 0.5 * min(comm, quant)``.  This module
*derives* that overlap from first principles: it schedules every
gradient matrix through the two-resource pipeline CNTK's double
buffering implements (Section 3.2.1) — the quantization engine (GPU)
and the wire (bus) — on a simulated clock, and reports the makespan
and per-matrix event trace.

Each matrix passes through three stages:

1. ``encode`` on the GPU (own ranges + decode of received ranges,
   folded into one GPU occupancy per matrix, as the kernels interleave);
2. ``transfer`` on the bus (reduce + broadcast bytes);
3. ``decode`` on the GPU (the broadcast ranges).

Stage 2 of matrix *i* overlaps stage 1 of matrix *i+1* — exactly the
paper's "while some gradients are being quantized, gradients that are
finished with quantization are already being sent".
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import GROUP_COST, LAUNCH_COST, NetworkCostModel
from .machine import MachineSpec

__all__ = ["MatrixEvents", "ExchangeTimeline", "pipeline_timeline"]


@dataclass(frozen=True)
class MatrixEvents:
    """Scheduled times (seconds) of one matrix through the pipeline."""

    name: str
    encode_start: float
    encode_end: float
    transfer_start: float
    transfer_end: float
    decode_start: float
    decode_end: float

    @property
    def completion(self) -> float:
        return self.decode_end


@dataclass(frozen=True)
class ExchangeTimeline:
    """The full event trace of one exchange."""

    events: tuple[MatrixEvents, ...]
    makespan: float
    gpu_busy: float
    bus_busy: float

    @property
    def gpu_utilization(self) -> float:
        return self.gpu_busy / self.makespan if self.makespan else 0.0

    @property
    def bus_utilization(self) -> float:
        return self.bus_busy / self.makespan if self.makespan else 0.0


def _matrix_quant_seconds(
    matrix, machine: MachineSpec, passes: float
) -> float:
    if not matrix.quantized:
        return 0.0
    work = (
        matrix.spec.size + GROUP_COST * matrix.groups + LAUNCH_COST
    ) * passes
    return work / machine.gpu.quant_elements_per_second


def _matrix_wire_seconds(
    matrix, machine: MachineSpec, world_size: int
) -> float:
    traffic = 2 * (world_size - 1) * matrix.range_bytes
    return traffic / machine.mpi_bus_bandwidth(world_size)


def pipeline_timeline(
    cost: NetworkCostModel,
    machine: MachineSpec,
    world_size: int,
) -> ExchangeTimeline:
    """Schedule every matrix through the double-buffered pipeline.

    GPU and bus are each serially reusable; a matrix's transfer may
    start only after its encode, and its decode only after its
    transfer.  Matrices are processed in backprop emission order (the
    model's layer order), matching CNTK.
    """
    if world_size < 2:
        return ExchangeTimeline(events=(), makespan=0.0, gpu_busy=0.0,
                                bus_busy=0.0)
    gpu_free = 0.0
    bus_free = 0.0
    events = []
    gpu_busy = 0.0
    bus_busy = 0.0
    for matrix in cost.matrices:
        # encode own ranges + decode peers' ranges for the owned range:
        # ~2 of the 3 sweeps happen before the wire, 1 after
        encode_seconds = _matrix_quant_seconds(matrix, machine, passes=2.0)
        decode_seconds = _matrix_quant_seconds(matrix, machine, passes=1.0)
        wire_seconds = _matrix_wire_seconds(matrix, machine, world_size)
        wire_seconds += (
            world_size * machine.mpi_matrix_latency_s
        )

        encode_start = gpu_free
        encode_end = encode_start + encode_seconds
        transfer_start = max(encode_end, bus_free)
        transfer_end = transfer_start + wire_seconds
        decode_start = max(transfer_end, encode_end)
        # decode contends with later encodes on the GPU: serialize it
        decode_start = max(decode_start, gpu_free + encode_seconds)
        decode_end = decode_start + decode_seconds

        gpu_free = max(encode_end, decode_end if decode_seconds else
                       encode_end)
        bus_free = transfer_end
        gpu_busy += encode_seconds + decode_seconds
        bus_busy += wire_seconds
        events.append(
            MatrixEvents(
                name=matrix.spec.name,
                encode_start=encode_start,
                encode_end=encode_end,
                transfer_start=transfer_start,
                transfer_end=transfer_end,
                decode_start=decode_start,
                decode_end=decode_end,
            )
        )
    makespan = max(
        (event.completion for event in events),
        default=0.0,
    ) + machine.mpi_sync_seconds(world_size)
    return ExchangeTimeline(
        events=tuple(events),
        makespan=makespan,
        gpu_busy=gpu_busy,
        bus_busy=bus_busy,
    )
