"""End-to-end iteration/epoch time simulation.

The simulator composes three calibrated cost terms per iteration:

* **compute** — per-sample backprop time from the network's measured
  single-K80 throughput, corrected for per-GPU batch size (small
  batches amortize kernels worse) and GPU architecture;
* **quantize** — encode/decode kernel work from the cost model's
  element/group/launch counts;
* **communicate** — wire time from the byte-exact payload sizes under
  the machine's MPI shared-bus or NCCL ring model.

On the MPI path quantization overlaps communication via CNTK's double
buffering (Section 3.2.1), so the exchange costs ``max(comm, quant)``;
on the simulated-NCCL path quantization precedes the allreduce call
and the two serialize (Section 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..models.specs import NetworkSpec, get_network
from .costmodel import NetworkCostModel, cached_cost_model
from .machine import MachineSpec, get_machine

__all__ = [
    "SimulationResult",
    "simulate",
    "simulate_spec",
    "compute_seconds_per_iteration",
]

#: per-GPU batch at or below which the paper's VGG small-batch
#: anomaly applies (Section 5.2, "Super-Linear Scaling")
SMALLBATCH_LIMIT = 16

#: fraction of the smaller of (comm, quantize) NOT hidden by CNTK's
#: double buffering on the MPI path (pipeline fill/drain)
MPI_OVERLAP_RESIDUE = 0.5


@dataclass(frozen=True)
class SimulationResult:
    """One cell of the performance study."""

    network: str
    machine: str
    scheme: str
    exchange: str
    world_size: int
    global_batch: int
    compute_seconds: float
    quantize_seconds: float
    comm_seconds: float
    iteration_seconds: float

    @property
    def samples_per_second(self) -> float:
        return self.global_batch / self.iteration_seconds

    def epoch_seconds(self, samples_per_epoch: int) -> float:
        iterations = math.ceil(samples_per_epoch / self.global_batch)
        return iterations * self.iteration_seconds

    @property
    def comm_fraction(self) -> float:
        """Share of the iteration spent on the wire (Figures 6-9 split)."""
        return self.comm_seconds / self.iteration_seconds


def compute_seconds_per_iteration(
    network: NetworkSpec, machine: MachineSpec, world_size: int
) -> tuple[float, int]:
    """Per-iteration compute time and the global batch size used."""
    global_batch = network.batch_size_for(world_size)
    per_gpu = max(global_batch // world_size, 1)
    reference = network.batch_sizes[1]
    c = machine.gpu.batch_overhead_samples
    base = 1.0 / network.k80_samples_per_second
    efficiency = (1.0 + c / per_gpu) / (1.0 + c / reference)
    per_sample = base * efficiency / machine.gpu.compute_scale
    if (
        network.smallbatch_speedup > 1.0
        and per_gpu <= SMALLBATCH_LIMIT < reference
    ):
        per_sample /= network.smallbatch_speedup
    return per_sample * per_gpu, global_batch


def _mpi_exchange(
    cost: NetworkCostModel, machine: MachineSpec, world_size: int
) -> tuple[float, float]:
    """(comm seconds, quantize seconds) for the MPI path."""
    payload = cost.total_range_bytes
    traffic = 2 * (world_size - 1) * payload
    bandwidth = machine.mpi_bus_bandwidth(world_size)
    comm = traffic / bandwidth
    # stock column-wise 1bitSGD ships its per-column scale arrays as
    # separate messages, doubling the per-matrix message overhead
    message_factor = 2 if cost.scheme == "1bit" else 1
    comm += (
        cost.matrix_count
        * world_size
        * machine.mpi_matrix_latency_s
        * message_factor
    )
    comm += machine.mpi_sync_seconds(world_size)
    # encode own ranges + decode owned range from K peers + requantize
    # the aggregate + decode the broadcast: ~3 full sweeps
    quant = cost.quant_work_units(3.0) / machine.gpu.quant_elements_per_second
    return comm, quant


def _nccl_exchange(
    cost: NetworkCostModel, machine: MachineSpec, world_size: int
) -> tuple[float, float]:
    """(comm seconds, quantize seconds) for the (simulated) NCCL path."""
    payload = cost.total_whole_bytes
    ring_bytes = 2 * (world_size - 1) / world_size * payload
    comm = ring_bytes / machine.nccl_link_bandwidth()
    comm += cost.matrix_count * machine.nccl_matrix_latency_s
    # quantization on the NCCL path skips per-range staging, so its
    # effective rate is higher than the MPI path's
    quant = (
        cost.quant_work_units(2.0)
        / machine.gpu.quant_elements_per_second
        * machine.nccl_quant_speedup
    )
    return comm, quant


def simulate(
    network: str,
    machine: str,
    scheme: str,
    exchange: str,
    world_size: int,
    bucket_size: int | None = None,
) -> SimulationResult:
    """Simulate one (network, machine, scheme, primitive, K) cell.

    Raises ``ValueError`` for cells the paper could not run either
    (e.g. NCCL beyond 8 GPUs, or GPU counts a machine does not have).
    """
    cost = (
        cached_cost_model(network, scheme, world_size, bucket_size)
        if world_size > 1
        else None
    )
    return simulate_spec(
        get_network(network), machine, scheme, exchange, world_size, cost
    )


def simulate_spec(
    net: NetworkSpec,
    machine: str,
    scheme: str,
    exchange: str,
    world_size: int,
    cost: NetworkCostModel | None = None,
) -> SimulationResult:
    """Simulate an arbitrary :class:`NetworkSpec` (e.g. a dummy model).

    ``cost`` may be supplied to reuse a prebuilt cost model; otherwise
    one is constructed for the spec.
    """
    mach = get_machine(machine)
    if not mach.supports(world_size, exchange):
        raise ValueError(
            f"{machine} does not support {world_size} GPUs over {exchange}"
        )

    compute, global_batch = compute_seconds_per_iteration(
        net, mach, world_size
    )

    if world_size == 1:
        comm = quant = 0.0
        exchange_time = 0.0
    else:
        if cost is None:
            cost = NetworkCostModel(net, scheme, world_size)
        if exchange == "mpi":
            comm, quant = _mpi_exchange(cost, mach, world_size)
            # double buffering overlaps quantization with sending,
            # minus a pipeline fill/drain residue
            exchange_time = max(comm, quant) + MPI_OVERLAP_RESIDUE * min(
                comm, quant
            )
        elif exchange == "nccl":
            comm, quant = _nccl_exchange(cost, mach, world_size)
            if scheme == "32bit":
                quant = 0.0
            # simulated low-precision NCCL quantizes, then allreduces
            exchange_time = comm + quant
        else:
            raise ValueError(
                f"unknown exchange {exchange!r}; expected 'mpi' or 'nccl'"
            )

    return SimulationResult(
        network=net.name,
        machine=machine,
        scheme=scheme,
        exchange=exchange,
        world_size=world_size,
        global_batch=global_batch,
        compute_seconds=compute,
        quantize_seconds=quant,
        comm_seconds=comm,
        iteration_seconds=compute + exchange_time,
    )
