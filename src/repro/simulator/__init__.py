"""Performance simulator standing in for the EC2 / DGX-1 hardware."""

from .calibration import PAPER_MPI_TABLE, PAPER_NCCL_TABLE
from .costmodel import MatrixCost, NetworkCostModel, cached_cost_model
from .epoch import (
    SimulationResult,
    compute_seconds_per_iteration,
    simulate,
    simulate_spec,
)
from .machine import (
    MACHINES,
    GpuSpec,
    MachineSpec,
    cheapest_machine_for,
    get_machine,
)
from .timeline import ExchangeTimeline, MatrixEvents, pipeline_timeline

__all__ = [
    "PAPER_MPI_TABLE",
    "PAPER_NCCL_TABLE",
    "MatrixCost",
    "NetworkCostModel",
    "cached_cost_model",
    "SimulationResult",
    "compute_seconds_per_iteration",
    "simulate",
    "simulate_spec",
    "MACHINES",
    "GpuSpec",
    "MachineSpec",
    "cheapest_machine_for",
    "get_machine",
    "ExchangeTimeline",
    "MatrixEvents",
    "pipeline_timeline",
]
