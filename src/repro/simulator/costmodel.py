"""Per-matrix wire sizes and quantization work for the simulator.

Wire sizes are computed with the *real* codecs' ``encoded_nbytes`` —
the same byte-exact wire format the training path uses — including the
MPI path's range partitioning (each owner's column range is encoded as
its own message, so tiny ranges pay their own scale/header overhead,
exactly as in :class:`repro.comm.mpi.MpiReduceBroadcast`).

Quantization *work* is expressed in element-equivalents: processing
one value costs one unit; every quantization group (column or bucket)
adds ``GROUP_COST`` units for its reduction and scale handling; every
kernel launch adds ``LAUNCH_COST`` units.  Dividing by the GPU's
calibrated ``quant_elements_per_second`` yields seconds.  This is what
makes stock column-wise 1bitSGD slow on convolutional networks: a
60M-parameter ResNet152 has ~30M one-to-three-element columns, each
paying the group cost (paper Section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..comm.topology import partition_ranges
from ..models.specs import GradientMatrixSpec, NetworkSpec
from ..quantization import (
    FullPrecision,
    OneBitSgd,
    OneBitSgdReshaped,
    Qsgd,
    Quantizer,
    make_quantizer,
    passthrough_threshold,
)
from ..quantization.bucketing import bucket_count

__all__ = [
    "MatrixCost",
    "NetworkCostModel",
    "GROUP_COST",
    "LAUNCH_COST",
]

#: extra element-equivalents of work per quantization group
GROUP_COST = 12.0
#: element-equivalents per kernel launch (two phases per matrix)
LAUNCH_COST = 20_000.0


def _group_count(codec: Quantizer, rows: int, cols: int) -> int:
    """Number of quantization groups the codec forms on a matrix."""
    if isinstance(codec, FullPrecision):
        return 0
    if isinstance(codec, OneBitSgd):
        return cols
    if isinstance(codec, (OneBitSgdReshaped, Qsgd)):
        count = rows * cols
        return bucket_count(count, codec.effective_bucket(count))
    raise TypeError(f"unknown codec type {type(codec).__name__}")


@dataclass(frozen=True)
class MatrixCost:
    """Wire and work footprint of one gradient matrix under one codec."""

    spec: GradientMatrixSpec
    quantized: bool
    #: bytes of the whole matrix encoded as a single message (NCCL path)
    whole_bytes: int
    #: bytes summed over the K per-owner column-range messages (MPI path)
    range_bytes: int
    #: quantization groups over the whole matrix
    groups: int
    #: number of encode/decode kernel launches per pass on the MPI path
    mpi_launches: int


class NetworkCostModel:
    """Footprints of every gradient matrix of one network under one codec."""

    def __init__(
        self,
        network: NetworkSpec,
        scheme: str,
        world_size: int,
        bucket_size: int | None = None,
        passthrough_coverage: float = 0.99,
    ):
        self.network = network
        self.scheme = scheme
        self.world_size = world_size
        self.codec = make_quantizer(scheme, bucket_size=bucket_size)
        self.threshold = passthrough_threshold(
            [layer.size for layer in network.layers],
            coverage=passthrough_coverage,
        )
        self._fullprec = FullPrecision()
        self.matrices = [
            self._cost_matrix(layer) for layer in network.layers
        ]

    def _codec_for(self, layer: GradientMatrixSpec) -> Quantizer:
        if layer.size < self.threshold:
            return self._fullprec
        return self.codec

    def _cost_matrix(self, layer: GradientMatrixSpec) -> MatrixCost:
        codec = self._codec_for(layer)
        whole = codec.encoded_nbytes(layer.shape)
        ranges = partition_ranges(layer.cols, self.world_size)
        range_total = 0
        launches = 0
        for lo, hi in ranges:
            if hi > lo:
                range_total += codec.encoded_nbytes((layer.rows, hi - lo))
                launches += 2  # two kernel phases per encoded range
        return MatrixCost(
            spec=layer,
            quantized=not isinstance(codec, FullPrecision),
            whole_bytes=whole,
            range_bytes=range_total,
            groups=_group_count(self._codec_for(layer), layer.rows, layer.cols),
            mpi_launches=launches,
        )

    # -- aggregates -------------------------------------------------------
    @property
    def total_elements(self) -> int:
        return self.network.parameter_count

    @property
    def total_whole_bytes(self) -> int:
        """Per-rank payload when each matrix is one message (NCCL)."""
        return sum(m.whole_bytes for m in self.matrices)

    @property
    def total_range_bytes(self) -> int:
        """Per-rank payload on the range-partitioned MPI path."""
        return sum(m.range_bytes for m in self.matrices)

    @property
    def total_groups(self) -> int:
        return sum(m.groups for m in self.matrices)

    @property
    def matrix_count(self) -> int:
        return len(self.matrices)

    @property
    def quantized_fraction(self) -> float:
        """Fraction of parameters travelling through the quantizer."""
        quantized = sum(m.spec.size for m in self.matrices if m.quantized)
        return quantized / max(self.total_elements, 1)

    @property
    def quantized_elements(self) -> int:
        """Parameters that actually travel through the quantizer."""
        return sum(m.spec.size for m in self.matrices if m.quantized)

    def quant_work_units(self, passes: float) -> float:
        """Element-equivalents for ``passes`` encode/decode sweeps."""
        per_pass = (
            self.quantized_elements
            + GROUP_COST * self.total_groups
            + LAUNCH_COST * sum(1 for m in self.matrices if m.quantized)
        )
        return passes * per_pass


@lru_cache(maxsize=256)
def cached_cost_model(
    network_name: str,
    scheme: str,
    world_size: int,
    bucket_size: int | None = None,
) -> NetworkCostModel:
    """Memoized cost models keyed by (network, scheme, K, bucket)."""
    from ..models.specs import get_network

    return NetworkCostModel(
        get_network(network_name), scheme, world_size, bucket_size
    )
