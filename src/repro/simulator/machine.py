"""Machine models: the paper's Figure 2 plus calibrated link constants.

The numbers with physical provenance (GPU counts, architectures, list
prices, TFLOPS) come straight from Figure 2.  The *effective* link and
kernel constants are calibration products: they are fit so that the
simulator reproduces the throughput tables of Figures 10 and 11 — see
:mod:`repro.simulator.calibration` for the fitting notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps_to_bytes_per_second

__all__ = ["GpuSpec", "MachineSpec", "MACHINES", "get_machine"]


@dataclass(frozen=True)
class GpuSpec:
    """One GPU model.

    Attributes:
        compute_scale: throughput multiplier relative to the K80 (the
            paper's Section 5.2: the P100 is "about 40% faster").
        quant_elements_per_second: effective rate of the quantization
            kernels (elements through encode or decode per second).
        batch_overhead_samples: the batch-efficiency constant ``c`` in
            ``time_per_sample(b) ∝ (1 + c / b)`` — small per-GPU
            batches amortize kernel launches worse.
    """

    name: str
    architecture: str
    tflops_single: float
    compute_scale: float
    quant_elements_per_second: float
    batch_overhead_samples: float


K80 = GpuSpec(
    name="K80",
    architecture="Kepler",
    tflops_single=8.73,
    compute_scale=1.0,
    # effective rate including host staging of scales and codes,
    # calibrated against Figure 10's quantized columns
    quant_elements_per_second=1.5e9,
    batch_overhead_samples=6.0,
)

P100 = GpuSpec(
    name="P100",
    architecture="Pascal",
    tflops_single=10.6,
    compute_scale=1.4,
    quant_elements_per_second=2.1e9,
    batch_overhead_samples=6.0,
)


@dataclass(frozen=True)
class MachineSpec:
    """One machine configuration from the paper's Figure 2.

    Link constants are *effective* values fit against Figures 10/11,
    quoted in Gbit/s (converted exactly once through
    :func:`repro.units.gbps_to_bytes_per_second`, like every other
    link rate in the repository):

    * MPI is modelled as a host-staged shared bus whose aggregate
      bandwidth grows sub-linearly with the number of GPUs:
      ``bw(K) = mpi_bus_gbps * (K / 4) ** mpi_bus_exponent``;
    * NCCL is modelled as a bandwidth-optimal ring with effective
      per-rank link bandwidth ``nccl_link_gbps``;
    * each gradient matrix costs ``matrix_latency_s`` per rank of
      fixed overhead on the MPI path (message setup + host staging).
    """

    name: str
    gpu: GpuSpec
    max_gpus: int
    price_per_hour: float
    cpu_cores: int
    mpi_bus_gbps: float
    mpi_bus_exponent: float
    mpi_matrix_latency_s: float
    mpi_sync_per_gpu_s: float
    nccl_link_gbps: float
    nccl_matrix_latency_s: float
    nccl_max_gpus: int
    nccl_quant_speedup: float

    def mpi_bus_bandwidth(self, world_size: int) -> float:
        """Aggregate MPI bus bandwidth in bytes/second at ``world_size``."""
        scale = (world_size / 4.0) ** self.mpi_bus_exponent
        return gbps_to_bytes_per_second(self.mpi_bus_gbps) * scale

    def nccl_link_bandwidth(self) -> float:
        """Per-rank NCCL ring bandwidth in bytes/second."""
        return gbps_to_bytes_per_second(self.nccl_link_gbps)

    def mpi_sync_seconds(self, world_size: int) -> float:
        """Straggler/synchronization overhead growing past 4 GPUs."""
        return max(0, world_size - 4) * self.mpi_sync_per_gpu_s

    def supports(self, world_size: int, exchange: str) -> bool:
        """Whether the paper ran this (world size, primitive) cell."""
        if world_size < 1 or world_size > self.max_gpus:
            return False
        if exchange == "nccl" and world_size > self.nccl_max_gpus:
            return False  # "NCCL does not currently support more than 8"
        return True


_EC2_COMMON = {
    "gpu": K80,
    "mpi_bus_gbps": 24.0,
    "mpi_bus_exponent": 0.62,
    "mpi_matrix_latency_s": 7.5e-6,
    "mpi_sync_per_gpu_s": 5.0e-3,
    "nccl_link_gbps": 48.0,
    "nccl_matrix_latency_s": 4.0e-4,
    "nccl_max_gpus": 8,
    "nccl_quant_speedup": 0.25,
}

MACHINES: dict[str, MachineSpec] = {
    "p2.xlarge": MachineSpec(
        name="p2.xlarge",
        max_gpus=1,
        price_per_hour=0.9,
        cpu_cores=4,
        **_EC2_COMMON,
    ),
    "p2.8xlarge": MachineSpec(
        name="p2.8xlarge",
        max_gpus=8,
        price_per_hour=7.2,
        cpu_cores=32,
        **_EC2_COMMON,
    ),
    "p2.16xlarge": MachineSpec(
        name="p2.16xlarge",
        max_gpus=16,
        price_per_hour=14.4,
        cpu_cores=64,
        **_EC2_COMMON,
    ),
    "dgx1": MachineSpec(
        name="dgx1",
        gpu=P100,
        max_gpus=8,
        price_per_hour=50.0,  # Nimbix hourly price quoted in Figure 2
        cpu_cores=32,
        mpi_bus_gbps=20.0,
        mpi_bus_exponent=0.62,
        mpi_matrix_latency_s=6.0e-6,
        mpi_sync_per_gpu_s=4.0e-3,
        nccl_link_gbps=32.0,
        nccl_matrix_latency_s=3.0e-4,
        nccl_max_gpus=8,
        nccl_quant_speedup=0.25,
    ),
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; expected one of {sorted(MACHINES)}"
        ) from None


def cheapest_machine_for(world_size: int) -> MachineSpec:
    """Smallest EC2 instance that fits ``world_size`` GPUs."""
    candidates = [
        m
        for m in MACHINES.values()
        if m.gpu is K80 and m.max_gpus >= world_size
    ]
    if not candidates:
        raise ValueError(f"no EC2 instance offers {world_size} GPUs")
    return min(candidates, key=lambda m: m.price_per_hour)
