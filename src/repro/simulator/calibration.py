"""Calibration notes and the paper's published throughput tables.

Provenance of the simulator's effective constants
=================================================

The simulator's free constants were fit, by hand, against the paper's
Figure 10 (MPI) and Figure 11 (NCCL) samples/second tables:

* ``k80_samples_per_second`` per network — read directly from the
  1-GPU column of Figure 10 (compute only; no communication at K=1);
* ``mpi_bus_gbps=24.0`` (Gbit/s = 3.0 GB/s) at the 4-GPU reference
  with exponent ``0.62`` — fits the 32-bit AlexNet MPI column (328 →
  273 → 192 samples/s for 4/8/16 GPUs), i.e. an aggregate host-staged
  bus whose bandwidth grows sub-linearly as GPUs are added;
* ``nccl_link_gbps=48.0`` (Gbit/s = 6.0 GB/s) — fits 32-bit
  AlexNet/VGG19 NCCL at 8 GPUs;
* ``mpi_matrix_latency_s=7.5e-6`` — fits the many-matrix networks
  (ResNet110's 446 gradient matrices make its 16-GPU MPI throughput
  *drop* below its 8-GPU value, as in the paper);
* ``quant_elements_per_second=10e9`` with ``GROUP_COST=12`` and
  ``LAUNCH_COST=20000`` — fits the gap between stock 1bitSGD and
  1bitSGD* on convolutional networks (Figure 10's ResNet rows, where
  stock 1bitSGD is *slower* than full precision);
* DGX-1 constants — scaled from the EC2 fits using the paper's
  qualitative statements (P100 ≈ 1.4x K80; MPI-on-DGX still shows up
  to ~5x quantization speedups; NCCL-on-DGX caps VGG gains at ~1.6x).

``PAPER_MPI_TABLE`` and ``PAPER_NCCL_TABLE`` transcribe Figures 10 and
11 verbatim; tests and EXPERIMENTS.md compare simulated values against
them in *shape* (orderings, ratios, crossovers), never expecting exact
numbers, since the original testbed is being simulated.

Tables are keyed ``[network][scheme][n_gpus] -> samples/second``.
Cells the paper left blank (either unsupported or not run) are absent.
"""

from __future__ import annotations

__all__ = ["PAPER_MPI_TABLE", "PAPER_NCCL_TABLE"]

PAPER_MPI_TABLE: dict[str, dict[str, dict[int, float]]] = {
    "AlexNet": {
        "32bit": {1: 240.80, 2: 301.45, 4: 328.00, 8: 272.90, 16: 192.10},
        "qsgd16": {2: 388.80, 4: 508.80, 8: 500.90, 16: 335.60},
        "qsgd8": {2: 424.90, 4: 544.60, 8: 739.10, 16: 535.00},
        "qsgd4": {2: 466.50, 4: 598.70, 8: 964.90, 16: 748.50},
        "qsgd2": {2: 449.20, 4: 609.15, 8: 1076.50, 16: 889.80},
        "1bit": {2: 424.05, 4: 564.30, 8: 971.10, 16: 849.40},
        "1bit*": {2: 370.80, 4: 476.50, 8: 761.20, 16: 712.70},
    },
    "ResNet50": {
        "32bit": {1: 47.20, 2: 80.80, 4: 142.40, 8: 247.90, 16: 272.30},
        "qsgd16": {2: 90.20, 4: 156.30, 8: 275.80, 16: 348.70},
        "qsgd8": {2: 92.60, 4: 162.70, 8: 313.70, 16: 416.80},
        "qsgd4": {2: 93.90, 4: 165.70, 8: 326.10, 16: 461.20},
        "qsgd2": {2: 93.30, 4: 178.35, 8: 330.45, 16: 472.25},
        "1bit": {2: 45.10, 4: 81.70, 8: 160.15, 16: 155.20},
        "1bit*": {2: 88.10, 4: 156.50, 8: 296.70, 16: 442.40},
    },
    "ResNet110": {
        "32bit": {1: 343.70, 2: 555.00, 4: 957.70, 8: 1229.10, 16: 831.60},
        "qsgd16": {2: 551.00, 4: 942.70, 8: 1164.20, 16: 763.40},
        "qsgd8": {2: 550.20, 4: 960.10, 8: 1193.10, 16: 759.70},
        "qsgd4": {2: 571.10, 4: 957.40, 8: 1257.10, 16: 784.30},
        "qsgd2": {2: 557.20, 4: 973.10, 8: 1227.90, 16: 780.40},
        "1bit": {2: 465.60, 4: 643.30, 8: 610.90, 16: 406.90},
        "1bit*": {2: 550.40, 4: 884.80, 8: 1156.70, 16: 757.70},
    },
    "ResNet152": {
        "32bit": {1: 16.90, 2: 26.10, 4: 45.00, 8: 73.90, 16: 113.50},
        "qsgd16": {2: 31.20, 4: 54.50, 8: 95.50, 16: 151.00},
        "qsgd8": {2: 32.80, 4: 62.70, 8: 109.20, 16: 182.50},
        "qsgd4": {2: 33.60, 4: 60.20, 8: 121.90, 16: 203.20},
        "qsgd2": {2: 33.50, 4: 64.35, 8: 123.55, 16: 208.50},
        "1bit": {2: 10.55, 4: 22.10, 8: 41.40, 16: 63.15},
        "1bit*": {2: 30.40, 4: 55.50, 8: 108.10, 16: 193.50},
    },
    "VGG19": {
        "32bit": {1: 12.40, 2: 20.40, 4: 36.30, 8: 53.95, 16: 40.60},
        "qsgd16": {2: 24.80, 4: 46.40, 8: 35.80, 16: 67.80},
        "qsgd8": {2: 24.20, 4: 47.50, 8: 119.50, 16: 106.60},
        "qsgd4": {2: 27.00, 4: 52.30, 8: 151.65, 16: 143.80},
        "qsgd2": {2: 24.60, 4: 49.35, 8: 160.35, 16: 170.50},
        "1bit": {2: 22.20, 4: 43.15, 8: 117.35, 16: 120.60},
        "1bit*": {2: 22.90, 4: 44.80, 8: 99.15, 16: 134.30},
    },
    "BN-Inception": {
        "32bit": {1: 88.30, 2: 164.80, 4: 316.75, 8: 473.75, 16: 500.40},
        "qsgd16": {2: 171.80, 4: 337.10, 8: 482.70, 16: 592.30},
        "qsgd8": {2: 173.60, 4: 342.50, 8: 552.90, 16: 696.30},
        "qsgd4": {2: 174.80, 4: 346.90, 8: 593.40, 16: 743.30},
        "qsgd2": {2: 173.40, 4: 343.70, 8: 591.80, 16: 747.50},
        "1bit": {2: 127.60, 4: 236.25, 8: 336.15, 16: 321.30},
        "1bit*": {2: 170.30, 4: 335.10, 8: 480.50, 16: 700.40},
    },
}

PAPER_NCCL_TABLE: dict[str, dict[str, dict[int, float]]] = {
    "AlexNet": {
        "32bit": {1: 240.80, 2: 458.20, 4: 625.00, 8: 1138.30},
        "qsgd16": {2: 462.80, 4: 632.10, 8: 1157.60},
        "qsgd8": {2: 458.40, 4: 641.80, 8: 1214.80},
        "qsgd4": {2: 471.90, 4: 659.40, 8: 1247.70},
        "qsgd2": {2: 471.00, 4: 661.60, 8: 1229.70},
    },
    "ResNet50": {
        "32bit": {1: 47.20, 2: 93.80, 4: 164.80, 8: 291.10},
        "qsgd16": {2: 93.70, 4: 164.50, 8: 324.20},
        "qsgd8": {2: 94.00, 4: 165.80, 8: 297.40},
        "qsgd4": {2: 95.60, 4: 167.90, 8: 298.40},
        "qsgd2": {2: 95.50, 4: 168.20, 8: 304.10},
    },
    "ResNet152": {
        "32bit": {1: 16.90, 2: 33.60, 4: 60.10, 8: 112.10},
        "qsgd16": {2: 33.40, 4: 59.80, 8: 112.20},
        "qsgd8": {2: 33.70, 4: 60.80, 8: 115.10},
        "qsgd4": {2: 34.20, 4: 62.10, 8: 118.70},
        "qsgd2": {2: 34.30, 4: 62.20, 8: 119.90},
    },
    "VGG19": {
        "32bit": {1: 12.40, 2: 24.90, 4: 48.70, 8: 163.10},
        "qsgd16": {2: 24.90, 4: 49.10, 8: 168.00},
        "qsgd8": {2: 25.50, 4: 50.50, 8: 175.20},
        "qsgd4": {2: 25.60, 4: 51.00, 8: 179.50},
        "qsgd2": {2: 25.60, 4: 51.10, 8: 177.80},
    },
    "BN-Inception": {
        "32bit": {1: 88.30, 2: 175.30, 4: 342.00, 8: 486.70},
        "qsgd16": {2: 174.30, 4: 342.70, 8: 497.10},
        "qsgd8": {2: 174.50, 4: 345.30, 8: 510.10},
        "qsgd4": {2: 178.60, 4: 349.00, 8: 598.90},
        "qsgd2": {2: 177.20, 4: 349.00, 8: 608.20},
    },
}
