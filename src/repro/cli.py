"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show every registered experiment (one per paper figure);
* ``run <exp-id>...`` — regenerate specific tables/figures;
* ``insights`` — re-derive the paper's five summary answers;
* ``calibration`` — compare simulated throughput to the published
  Figure 10/11 tables cell by cell;
* ``networks`` / ``machines`` — print the Figure 2/3 inventory tables.
"""

from __future__ import annotations

import argparse
import sys

from .models.specs import NETWORKS
from .simulator import MACHINES
from .study import EXPERIMENTS, print_table, run_experiment, throughput_table
from .study.compression import print_compression_report
from .study.insights import print_insights

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [exp.exp_id, exp.paper_artefact, exp.description]
        for exp in sorted(EXPERIMENTS.values(), key=lambda e: e.exp_id)
    ]
    print_table(["Id", "Paper artefact", "Description"], rows,
                title="Registered experiments")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    for exp_id in args.experiments:
        if exp_id not in EXPERIMENTS:
            print(f"error: unknown experiment {exp_id!r} "
                  "(see `python -m repro list`)", file=sys.stderr)
            return 2
    for exp_id in args.experiments:
        print(f"\n### {exp_id}: {EXPERIMENTS[exp_id].description}")
        run_experiment(exp_id)
    return 0


def _cmd_insights(_args: argparse.Namespace) -> int:
    insights = print_insights()
    return 0 if all(i.holds for i in insights) else 1


def _cmd_calibration(args: argparse.Namespace) -> int:
    total_errors = []
    for exchange in ("mpi", "nccl"):
        cells = [
            c for c in throughput_table(exchange) if c.paper is not None
        ]
        errors = [abs(c.relative_error) for c in cells]
        total_errors.extend(errors)
        print(
            f"{exchange.upper()}: {len(cells)} cells, mean |error| = "
            f"{sum(errors) / len(errors):.1%}"
        )
        if args.verbose:
            for cell in cells:
                print(
                    f"  {cell.network:13s} {cell.scheme:7s} "
                    f"K={cell.world_size:2d} sim={cell.simulated:8.1f} "
                    f"paper={cell.paper:8.1f} "
                    f"err={cell.relative_error:+.1%}"
                )
    mean = sum(total_errors) / len(total_errors)
    print(f"overall mean |error| = {mean:.1%}")
    return 0 if mean < 0.2 else 1


def _cmd_compression(_args: argparse.Namespace) -> int:
    print_compression_report()
    return 0


def _cmd_networks(_args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.dataset,
            f"{spec.parameter_count / 1e6:.1f}M",
            spec.epochs_to_converge,
            spec.initial_lr,
            f"{spec.conv_fraction:.0%}",
        ]
        for spec in NETWORKS.values()
    ]
    print_table(
        ["Network", "Dataset", "Params", "Epochs", "LR", "Conv share"],
        rows,
        title="Networks (paper Figure 3)",
    )
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = [
        [
            machine.name,
            machine.cpu_cores,
            f"{machine.max_gpus} x {machine.gpu.name}",
            f"{machine.gpu.tflops_single} TFLOPS",
            f"${machine.price_per_hour}/h",
        ]
        for machine in MACHINES.values()
    ]
    print_table(
        ["Instance", "CPU cores", "GPUs", "Single-prec", "Price"],
        rows,
        title="Machines (paper Figure 2)",
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Synchronous Multi-GPU Deep Learning with "
            "Low-Precision Communication' (EDBT 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(
        handler=_cmd_list
    )
    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument("experiments", nargs="+", metavar="exp-id")
    run.set_defaults(handler=_cmd_run)
    sub.add_parser(
        "insights", help="re-derive the paper's summary answers"
    ).set_defaults(handler=_cmd_insights)
    calibration = sub.add_parser(
        "calibration", help="compare simulation to the published tables"
    )
    calibration.add_argument("-v", "--verbose", action="store_true")
    calibration.set_defaults(handler=_cmd_calibration)
    sub.add_parser(
        "compression", help="wire bits/element per network and scheme"
    ).set_defaults(handler=_cmd_compression)
    sub.add_parser("networks", help="show Figure 3").set_defaults(
        handler=_cmd_networks
    )
    sub.add_parser("machines", help="show Figure 2").set_defaults(
        handler=_cmd_machines
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
