"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show every registered experiment (one per paper figure);
* ``run <exp-id>...`` — regenerate specific tables/figures;
* ``train`` — train a zoo model end-to-end on synthetic data, with
  ``--engine sequential|threaded|process`` selecting the execution
  engine (``--ipc shm`` picks the process engine's transport),
  optional straggler/crash fault injection, retry/degradation policy
  (``--max-retries``, ``--allow-degraded``), and periodic
  checkpointing (``--checkpoint-dir``);
* ``resume`` — continue a ``train`` run from a checkpoint file (or the
  latest checkpoint in a directory), bit-identically: the resumed
  run's history digest equals the uninterrupted run's;
* ``trace`` — train a small traced cell, write a Chrome-trace JSON
  timeline (``chrome://tracing`` / Perfetto), and print the measured
  per-phase breakdown, optionally cross-validated against the
  simulator's prediction;
* ``fabric`` — simulate one collective on a multi-node fabric
  (event-driven per-link queueing), optionally injecting link faults,
  exporting a per-link Chrome trace, sweeping K, or gating the K=4
  anchor against a measured process-engine run (``--crossval``);
* ``serve`` — run the training-as-a-service daemon: a persistent job
  queue with priorities, a REST/JSON API
  (submit/status/cancel/list/stream-metrics), admission control onto a
  bounded runner-process pool, and crash-resume of in-flight jobs on
  restart (``--drain`` exits once every job is terminal);
* ``insights`` — re-derive the paper's five summary answers;
* ``calibration`` — compare simulated throughput to the published
  Figure 10/11 tables cell by cell;
* ``networks`` / ``machines`` — print the Figure 2/3 inventory tables.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from .comm import EXCHANGE_NAMES
from .core import (
    IPC_NAMES,
    POLICY_NAMES,
    CheckpointPolicy,
    ParallelTrainer,
    TrainingCheckpoint,
    TrainingConfig,
    latest_checkpoint,
)
from .data import make_image_dataset, make_sequence_dataset
from .fabric import PATTERN_NAMES, TOPOLOGY_NAMES
from .models import MODEL_BUILDERS, build_model
from .models.specs import NETWORKS
from .quantization import SCHEME_NAMES
from .runtime import ENGINE_NAMES
from .serve.queue import QUEUE_NAMES
from .serve.scheduler import SCHEDULER_NAMES
from .simulator import MACHINES
from .study import EXPERIMENTS, print_table, run_experiment, throughput_table
from .study.compression import print_compression_report
from .study.insights import print_insights
from .telemetry import (
    PhaseBreakdown,
    Tracer,
    cross_validate,
    write_chrome_trace,
)

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [exp.exp_id, exp.paper_artefact, exp.description]
        for exp in sorted(EXPERIMENTS.values(), key=lambda e: e.exp_id)
    ]
    print_table(["Id", "Paper artefact", "Description"], rows,
                title="Registered experiments")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    for exp_id in args.experiments:
        if exp_id not in EXPERIMENTS:
            print(f"error: unknown experiment {exp_id!r} "
                  "(see `python -m repro list`)", file=sys.stderr)
            return 2
    for exp_id in args.experiments:
        print(f"\n### {exp_id}: {EXPERIMENTS[exp_id].description}")
        run_experiment(exp_id)
    return 0


def _build_train_model(args: argparse.Namespace):
    if args.model == "lstm":
        return build_model(args.model, num_classes=args.classes,
                           seed=args.model_seed)
    if args.model in ("alexnet", "vgg"):
        return build_model(args.model, num_classes=args.classes,
                           image_size=args.image_size, seed=args.model_seed)
    return build_model(args.model, num_classes=args.classes,
                       seed=args.model_seed)


def _make_train_dataset(args: argparse.Namespace, config: TrainingConfig):
    if args.model == "lstm":
        return make_sequence_dataset(
            num_classes=args.classes, train_samples=args.train_samples,
            test_samples=args.test_samples, seed=config.seed,
        )
    return make_image_dataset(
        num_classes=args.classes, train_samples=args.train_samples,
        test_samples=args.test_samples, image_size=args.image_size,
        seed=config.seed,
    )


def _report_run(config: TrainingConfig, history) -> int:
    """Shared tail of ``train`` / ``resume``: verdict, digest, exit code."""
    for change in history.topology_changes:
        survivors = ",".join(str(r) for r in change.survivors)
        print(
            f"DEGRADED: rank {change.rank} evicted at step {change.step} "
            f"after {change.retries} retries ({change.kind}); "
            f"continuing on ranks [{survivors}]"
        )
    if history.failures:
        for failure in history.failures:
            print(
                f"FAILED: rank {failure.rank} {failure.kind} at step "
                f"{failure.step}: {failure.message}",
                file=sys.stderr,
            )
        return 1
    total_mb = history.total_comm_bytes / 1e6
    print(
        f"[{config.label}/{config.engine}] final test accuracy "
        f"{history.final_test_accuracy:.3f}, {total_mb:.1f} MB on the wire"
    )
    print(f"history digest: {history.digest()}")
    return 0


def _checkpoint_policy(
    args: argparse.Namespace, extra: dict
) -> CheckpointPolicy | None:
    if args.checkpoint_dir is None:
        return None
    return CheckpointPolicy(
        directory=args.checkpoint_dir,
        every_steps=args.checkpoint_every_steps,
        every_epochs=args.checkpoint_every_epochs,
        extra=extra,
    )


def _parse_kill_points(values: list[str]) -> tuple[tuple[int, int], ...]:
    points = []
    for value in values:
        try:
            rank, step = value.split(":", 1)
            points.append((int(rank), int(step)))
        except ValueError:
            raise ValueError(
                f"--kill-point must be RANK:STEP (e.g. 1:6), got {value!r}"
            ) from None
    return tuple(points)


def _cmd_train(args: argparse.Namespace) -> int:
    try:
        config = TrainingConfig(
            scheme=args.scheme,
            policy=args.policy,
            exchange=args.exchange,
            world_size=args.world_size,
            batch_size=args.batch_size,
            lr=args.lr,
            momentum=args.momentum,
            seed=args.seed,
            aggregation_frequency=args.aggregation_frequency,
            sync_mode=args.sync_mode,
            engine=args.engine,
            ipc=args.ipc,
            link_gbps=args.link_gbps,
            barrier_timeout=args.barrier_timeout,
            straggler_ranks=tuple(args.straggler_ranks),
            straggler_delay=args.straggler_delay,
            crash_rank=args.crash_rank,
            crash_step=args.crash_step,
            crash_transient=args.crash_transient,
            kill_points=_parse_kill_points(args.kill_point),
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            allow_degraded=args.allow_degraded,
            min_world_size=args.min_world_size,
        )
        policy = _checkpoint_policy(
            args,
            extra={
                "model": args.model,
                "model_seed": args.model_seed,
                "classes": args.classes,
                "image_size": args.image_size,
                "train_samples": args.train_samples,
                "test_samples": args.test_samples,
                "epochs": args.epochs,
                "checkpoint_every_steps": args.checkpoint_every_steps,
                "checkpoint_every_epochs": args.checkpoint_every_epochs,
            },
        )
    except ValueError as exc:
        print(f"repro train: error: {exc}", file=sys.stderr)
        return 2
    ds = _make_train_dataset(args, config)
    with ParallelTrainer(_build_train_model(args), config) as trainer:
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y,
            epochs=args.epochs, verbose=True, checkpoint=policy,
        )
    return _report_run(config, history)


def _cmd_resume(args: argparse.Namespace) -> int:
    path = Path(args.checkpoint)
    if path.is_dir():
        found = latest_checkpoint(path)
        if found is None:
            print(
                f"repro resume: error: no ckpt-*.npz under {path}",
                file=sys.stderr,
            )
            return 2
        path = found
    try:
        ckpt = TrainingCheckpoint.load(path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro resume: error: {exc}", file=sys.stderr)
        return 2
    config = ckpt.config
    if not args.keep_faults:
        # the fault that killed the original run is not re-injected —
        # resuming past it is the whole point
        config = replace(
            config, crash_rank=None, crash_step=None, straggler_ranks=(),
            straggler_delay=0.0, kill_points=(),
        )
    if args.engine is not None:
        config = replace(config, engine=args.engine)
    extra = ckpt.meta.get("extra", {})
    if not extra:
        print(
            "repro resume: error: checkpoint has no model/dataset "
            "metadata (was it written by `repro train`?)",
            file=sys.stderr,
        )
        return 2
    epochs = args.epochs if args.epochs is not None else extra["epochs"]
    model_args = argparse.Namespace(
        model=extra["model"],
        model_seed=extra["model_seed"],
        classes=extra["classes"],
        image_size=extra["image_size"],
        train_samples=extra["train_samples"],
        test_samples=extra["test_samples"],
    )
    policy = CheckpointPolicy(
        directory=path.parent,
        every_steps=extra.get("checkpoint_every_steps"),
        every_epochs=extra.get("checkpoint_every_epochs", 1),
        extra=extra,
    )
    print(
        f"resuming {config.label}/{config.engine} from {path} "
        f"(step {ckpt.step}, epoch {ckpt.epoch}, "
        f"{ckpt.batches_done} batches in)"
    )
    ds = _make_train_dataset(model_args, config)
    with ParallelTrainer(_build_train_model(model_args), config) as trainer:
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y,
            epochs=epochs, verbose=True, checkpoint=policy,
            resume_from=ckpt,
        )
    return _report_run(config, history)


#: CLI scheme families accepted by ``repro trace``; "qsgd" composes
#: with ``--bits`` into the internal scheme name (e.g. qsgd4)
_TRACE_SCHEMES = ("32bit", "qsgd", "1bit", "1bit*")


def _resolve_trace_scheme(scheme: str, bits: int | None) -> str:
    """Map the trace CLI's (--scheme, --bits) pair to a scheme name."""
    if scheme == "qsgd":
        if bits is None:
            raise ValueError("--scheme qsgd requires --bits (2, 4, 8 or 16)")
        name = f"qsgd{bits}"
        if name not in SCHEME_NAMES:
            raise ValueError(
                f"unsupported --bits {bits} for qsgd; expected one of "
                "2, 4, 8, 16"
            )
        return name
    if bits is not None:
        raise ValueError("--bits only applies to --scheme qsgd")
    return scheme


def _cmd_trace(args: argparse.Namespace) -> int:
    tracer = Tracer()
    try:
        scheme = _resolve_trace_scheme(args.scheme, args.bits)
        config = TrainingConfig(
            scheme=scheme,
            exchange=args.exchange,
            world_size=args.gpus,
            batch_size=args.batch_size,
            lr=args.lr,
            seed=args.seed,
            aggregation_frequency=args.aggregation_frequency,
            engine=args.engine,
            link_gbps=args.link_gbps,
            tracer=tracer,
        )
    except ValueError as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 2
    ds = make_image_dataset(
        num_classes=args.classes, train_samples=args.train_samples,
        test_samples=args.test_samples, image_size=args.image_size,
        seed=args.seed,
    )
    with ParallelTrainer(_build_train_model(args), config) as trainer:
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y,
            epochs=args.epochs, verbose=False,
        )
    if history.failures:
        for failure in history.failures:
            print(f"FAILED: {failure.message}", file=sys.stderr)
        return 1

    write_chrome_trace(tracer, args.output)
    wall = sum(m.wall_seconds for m in history.epochs)
    breakdown = PhaseBreakdown.from_tracer(
        tracer, wall_seconds=wall, label=f"{config.label}/{config.engine}"
    )
    print(breakdown.report())
    counters = tracer.counters
    print(
        f"wire bytes: {counters.wire_bytes_total}  "
        f"encodes: {counters.encode_calls}  "
        f"decodes: {counters.decode_calls}"
    )
    if counters.rounds_skipped:
        print(
            f"rounds skipped: {counters.rounds_skipped}  "
            f"wire bytes saved: {counters.wire_bytes_saved}"
        )
    print(f"trace written to {args.output} (load in chrome://tracing)")
    if args.crossval:
        validation = cross_validate(
            breakdown,
            scheme=scheme,
            exchange=args.exchange,
            world_size=args.gpus,
            network=args.network,
        )
        print()
        print(validation.report())
    return 0


def _fabric_faults(args: argparse.Namespace):
    from .fabric import LinkFault

    if args.fail_link is None:
        if args.recover_at is not None:
            raise ValueError("--recover-at requires --fail-link")
        return ()
    try:
        src, dst = args.fail_link.split(":", 1)
    except ValueError:
        raise ValueError(
            f"--fail-link must be SRC:DST (e.g. leaf0:spine1), got "
            f"{args.fail_link!r}"
        ) from None
    return (
        LinkFault(
            src=src,
            dst=dst,
            fail_at_s=args.fail_at,
            recover_at_s=args.recover_at,
        ),
    )


def _fabric_crossval(args: argparse.Namespace) -> int:
    """The K=4 reality anchor: measured process engine vs fabric."""
    import numpy as np

    from .fabric import fabric_cross_validate
    from .nn import Dense, Sequential

    world_size, steps, batch = 4, 3, 16
    link_gbps = args.link_gbps if args.link_gbps is not None else 0.002
    rng = np.random.default_rng(args.seed)
    samples = steps * batch
    x = rng.normal(size=(samples, 32)).astype(np.float32)
    y = rng.integers(0, 4, size=samples).astype(np.int64)
    tracer = Tracer()
    config = TrainingConfig(
        scheme=args.scheme,
        exchange="nccl",
        world_size=world_size,
        batch_size=batch,
        lr=0.01,
        seed=args.seed,
        engine="process",
        link_gbps=link_gbps,
        tracer=tracer,
    )
    model = Sequential(Dense(32, 4, "fc", rng))
    elements = sum(int(np.prod(p.shape)) for p in model.parameters())
    with ParallelTrainer(model, config) as trainer:
        history = trainer.fit(x, y, x, y, epochs=1)
    if history.failures:
        for failure in history.failures:
            print(f"FAILED: {failure.message}", file=sys.stderr)
        return 1
    breakdown = PhaseBreakdown.from_history(history)
    validation = fabric_cross_validate(
        breakdown,
        scheme=args.scheme,
        pattern=args.pattern if args.pattern != "auto" else "ring",
        world_size=world_size,
        total_elements=elements,
        steps=steps,
        link_gbps=link_gbps,
    )
    print(validation.report())
    if not validation.passes():
        print(
            "fabric crossval: FAIL — simulated communication share "
            "diverges from the measured process engine",
            file=sys.stderr,
        )
        return 1
    print("fabric crossval: PASS")
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    from .fabric import (
        make_topology,
        run_collective,
        select_collective,
        write_fabric_trace,
    )
    from .study.fabric import print_fabric_sweep

    if args.crossval:
        return _fabric_crossval(args)
    if args.sweep:
        sizes = tuple(args.sweep_ranks) if args.sweep_ranks else None
        if sizes is None:
            print_fabric_sweep()
        else:
            print_fabric_sweep(world_sizes=sizes)
        return 0
    try:
        kwargs = {}
        if args.topology == "leaf-spine":
            kwargs["oversubscription"] = args.oversubscription
        topology = make_topology(args.topology, args.ranks, **kwargs)
        if args.network is not None:
            from .models.specs import get_network

            elements = get_network(args.network).parameter_count
        else:
            elements = args.elements
        faults = _fabric_faults(args)
        if args.pattern == "auto":
            choice = select_collective(topology, elements, args.scheme)
            print(
                f"auto-selected {choice.pattern} "
                f"(candidates: "
                + ", ".join(
                    f"{p}={s * 1e3:.3f}ms"
                    for p, s in sorted(choice.candidates.items())
                )
                + ")"
            )
            pattern = choice.pattern
        else:
            pattern = args.pattern
        result = run_collective(
            topology, pattern, elements, scheme=args.scheme,
            faults=faults,
        )
    except ValueError as exc:
        print(f"repro fabric: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"[{topology.name}/K={args.ranks}] {pattern}/{args.scheme}: "
        f"{result.makespan_seconds * 1e3:.3f} ms makespan, "
        f"{result.total_wire_bytes / 1e6:.2f} MB on the wire, "
        f"{result.completed_transfers} transfers"
    )
    for link, utilization in result.busiest_links(3):
        print(f"  hot link {link[0]}->{link[1]}: {utilization:.1%} busy")
    for change in result.topology_changes:
        survivors = ",".join(str(r) for r in change.survivors)
        print(
            f"DEGRADED: rank {change.rank} evicted ({change.kind}); "
            f"continuing on ranks [{survivors}]"
        )
    if result.dropped_transfers:
        print(
            f"  {result.dropped_transfers} transfers dropped at the "
            "partition and re-issued over the survivors"
        )
    if args.trace is not None:
        write_fabric_trace(result, args.trace)
        print(
            f"per-link trace written to {args.trace} "
            "(load in chrome://tracing)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .serve import ServeDaemon

    try:
        daemon = ServeDaemon(
            args.root,
            max_ranks=args.max_ranks,
            queue=args.queue,
            scheduler=args.scheduler,
            host=args.host,
            port=args.port,
            poll_interval=args.poll_interval,
            max_restarts=args.max_restarts,
            grace_s=args.grace,
        )
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2

    def on_signal(_signum, _frame) -> None:  # pragma: no cover - signal
        daemon.request_stop()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    host, port = daemon.start_api()
    counts = daemon.store.counts()
    print(
        f"serving on http://{host}:{port} (root={args.root}, "
        f"max_ranks={args.max_ranks}, queue={daemon.queue.name}, "
        f"scheduler={daemon.scheduler.name}); "
        f"rescanned {sum(counts.values())} job(s): {counts or '{}'}",
        flush=True,
    )
    try:
        daemon.serve_forever(drain=args.drain)
    finally:
        daemon.close()
    print("serve: shut down cleanly", flush=True)
    return 0


def _cmd_insights(_args: argparse.Namespace) -> int:
    insights = print_insights()
    return 0 if all(i.holds for i in insights) else 1


def _cmd_calibration(args: argparse.Namespace) -> int:
    total_errors = []
    for exchange in ("mpi", "nccl"):
        cells = [
            c for c in throughput_table(exchange) if c.paper is not None
        ]
        errors = [abs(c.relative_error) for c in cells]
        total_errors.extend(errors)
        print(
            f"{exchange.upper()}: {len(cells)} cells, mean |error| = "
            f"{sum(errors) / len(errors):.1%}"
        )
        if args.verbose:
            for cell in cells:
                print(
                    f"  {cell.network:13s} {cell.scheme:7s} "
                    f"K={cell.world_size:2d} sim={cell.simulated:8.1f} "
                    f"paper={cell.paper:8.1f} "
                    f"err={cell.relative_error:+.1%}"
                )
    mean = sum(total_errors) / len(total_errors)
    print(f"overall mean |error| = {mean:.1%}")
    return 0 if mean < 0.2 else 1


def _cmd_compression(_args: argparse.Namespace) -> int:
    print_compression_report()
    return 0


def _cmd_networks(_args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.dataset,
            f"{spec.parameter_count / 1e6:.1f}M",
            spec.epochs_to_converge,
            spec.initial_lr,
            f"{spec.conv_fraction:.0%}",
        ]
        for spec in NETWORKS.values()
    ]
    print_table(
        ["Network", "Dataset", "Params", "Epochs", "LR", "Conv share"],
        rows,
        title="Networks (paper Figure 3)",
    )
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = [
        [
            machine.name,
            machine.cpu_cores,
            f"{machine.max_gpus} x {machine.gpu.name}",
            f"{machine.gpu.tflops_single} TFLOPS",
            f"${machine.price_per_hour}/h",
        ]
        for machine in MACHINES.values()
    ]
    print_table(
        ["Instance", "CPU cores", "GPUs", "Single-prec", "Price"],
        rows,
        title="Machines (paper Figure 2)",
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Synchronous Multi-GPU Deep Learning with "
            "Low-Precision Communication' (EDBT 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(
        handler=_cmd_list
    )
    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument("experiments", nargs="+", metavar="exp-id")
    run.set_defaults(handler=_cmd_run)
    train = sub.add_parser(
        "train", help="train a zoo model on synthetic data"
    )
    train.add_argument(
        "--model", default="alexnet", choices=sorted(MODEL_BUILDERS)
    )
    train.add_argument("--scheme", default="32bit", choices=SCHEME_NAMES)
    train.add_argument(
        "--policy",
        default="static",
        choices=POLICY_NAMES,
        help="bit-width policy; 'adaptive' picks a per-layer scheme "
        "from layer size and kind (--scheme is the middle precision "
        "tier), 'static' applies --scheme to every layer",
    )
    train.add_argument("--exchange", default="mpi", choices=EXCHANGE_NAMES)
    train.add_argument(
        "--engine",
        default="sequential",
        choices=ENGINE_NAMES,
        help="execution engine; 'threaded' runs one worker thread per "
        "rank with overlapped bucketed exchange, 'process' one OS "
        "process per rank with shared-memory exchange (all three are "
        "bit-identical)",
    )
    train.add_argument(
        "--ipc",
        default="shm",
        choices=IPC_NAMES,
        help="gradient transport of the process engine (ignored by "
        "the in-process engines)",
    )
    train.add_argument("--world-size", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument(
        "--momentum", type=float, default=0.9,
        help="SGD momentum (use 0 with --sync-mode local_sgd)",
    )
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--aggregation-frequency", type=int, default=1, metavar="N",
        help="micro-steps per synchronization round; N=1 exchanges "
        "every step (bit-identical to the classic path), N>1 runs the "
        "quantized exchange once per N steps, cutting wire traffic "
        "~N-fold",
    )
    train.add_argument(
        "--sync-mode", default="allreduce",
        help="what a round exchanges: 'allreduce' ships accumulated "
        "gradients, 'local_sgd' takes local optimizer steps and "
        "averages parameters (requires --momentum 0)",
    )
    train.add_argument("--model-seed", type=int, default=1)
    train.add_argument("--classes", type=int, default=4)
    train.add_argument("--image-size", type=int, default=8)
    train.add_argument("--train-samples", type=int, default=256)
    train.add_argument("--test-samples", type=int, default=128)
    train.add_argument(
        "--link-gbps", type=float, default=None,
        help="pace collectives at this simulated link rate",
    )
    train.add_argument("--barrier-timeout", type=float, default=30.0)
    train.add_argument(
        "--straggler-ranks", type=int, nargs="*", default=[],
        help="ranks delayed by --straggler-delay every step",
    )
    train.add_argument("--straggler-delay", type=float, default=0.0)
    train.add_argument(
        "--crash-rank", type=int, default=None,
        help="rank to crash at --crash-step (fault-injection demo)",
    )
    train.add_argument("--crash-step", type=int, default=None)
    train.add_argument(
        "--crash-transient", action="store_true",
        help="the injected crash fires only on a step's first attempt, "
        "so a retried step succeeds",
    )
    train.add_argument(
        "--kill-point", action="append", default=[], metavar="RANK:STEP",
        help="kill this rank outright at this step (repeatable); a "
        "real SIGKILL under the process engine, an injected crash on "
        "the in-process engines",
    )
    train.add_argument(
        "--max-retries", type=int, default=0,
        help="re-attempts per failed step before escalating (0 = "
        "fail fast)",
    )
    train.add_argument(
        "--retry-backoff", type=float, default=0.05,
        help="base backoff seconds between retries (doubles per retry)",
    )
    train.add_argument(
        "--allow-degraded", action="store_true",
        help="evict a rank that exhausts its retries and continue on "
        "the survivors (resharded batch, reweighted gradient mean)",
    )
    train.add_argument(
        "--min-world-size", type=int, default=1,
        help="smallest live world --allow-degraded may shrink to",
    )
    train.add_argument(
        "--checkpoint-dir", default=None,
        help="write ckpt-<step>.npz checkpoints here (enables "
        "`repro resume`)",
    )
    train.add_argument(
        "--checkpoint-every-steps", type=int, default=None,
        help="also checkpoint every N global steps (mid-epoch)",
    )
    train.add_argument(
        "--checkpoint-every-epochs", type=int, default=1,
        help="checkpoint at the end of every N epochs",
    )
    train.set_defaults(handler=_cmd_train)
    resume = sub.add_parser(
        "resume",
        help="continue a `repro train` run from a checkpoint, "
        "bit-identically",
    )
    resume.add_argument(
        "checkpoint",
        help="a ckpt-*.npz file, or a directory (latest checkpoint wins)",
    )
    resume.add_argument(
        "--epochs", type=int, default=None,
        help="total epochs to train to (default: the original run's)",
    )
    resume.add_argument(
        "--engine", default=None, choices=ENGINE_NAMES,
        help="override the engine (legal: all engines are "
        "bit-identical)",
    )
    resume.add_argument(
        "--keep-faults", action="store_true",
        help="re-apply the original run's fault injection instead of "
        "clearing it",
    )
    resume.set_defaults(handler=_cmd_resume)
    trace = sub.add_parser(
        "trace",
        help="trace a small training cell (Chrome trace + breakdown)",
    )
    trace.add_argument(
        "--scheme", default="qsgd", choices=_TRACE_SCHEMES,
        help="scheme family; 'qsgd' composes with --bits",
    )
    trace.add_argument(
        "--bits", type=int, default=None,
        help="QSGD word length (2, 4, 8 or 16); only with --scheme qsgd",
    )
    trace.add_argument("--exchange", default="mpi", choices=EXCHANGE_NAMES)
    trace.add_argument(
        "--gpus", type=int, default=4, help="number of simulated GPUs"
    )
    trace.add_argument(
        "--engine", default="sequential", choices=ENGINE_NAMES,
        help="'sequential' keeps phases serial, so the breakdown rows "
        "partition wall time; 'threaded' overlaps phases",
    )
    trace.add_argument(
        "--model", default="alexnet", choices=sorted(MODEL_BUILDERS)
    )
    trace.add_argument("--epochs", type=int, default=1)
    trace.add_argument(
        "--aggregation-frequency", type=int, default=1, metavar="N",
        help="micro-steps per synchronization round (see `repro train`)",
    )
    trace.add_argument("--batch-size", type=int, default=32)
    trace.add_argument("--lr", type=float, default=0.01)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--model-seed", type=int, default=1)
    trace.add_argument("--classes", type=int, default=4)
    trace.add_argument("--image-size", type=int, default=8)
    trace.add_argument("--train-samples", type=int, default=128)
    trace.add_argument("--test-samples", type=int, default=64)
    trace.add_argument("--link-gbps", type=float, default=None)
    trace.add_argument(
        "--output", default="trace.json",
        help="Chrome-trace JSON path (chrome://tracing / Perfetto)",
    )
    trace.add_argument(
        "--crossval", action="store_true",
        help="compare measured phase ratios to the simulator's "
        "prediction for --network at the same scheme/exchange/scale",
    )
    trace.add_argument(
        "--network", default="AlexNet", choices=sorted(NETWORKS),
        help="paper network the cross-validation simulates",
    )
    trace.set_defaults(handler=_cmd_trace)
    fabric = sub.add_parser(
        "fabric",
        help="simulate a collective on a multi-node fabric "
        "(per-link queueing, failures, traces, K-sweeps)",
    )
    fabric.add_argument(
        "--topology", default="leaf-spine", choices=TOPOLOGY_NAMES,
        help="fabric family: single-node star (pcie/nvlink) or "
        "two-level Clos (fat-tree/leaf-spine)",
    )
    fabric.add_argument(
        "--ranks", type=int, default=64, help="number of GPUs (K)"
    )
    fabric.add_argument(
        "--pattern", default="auto",
        choices=("auto",) + PATTERN_NAMES,
        help="collective schedule; 'auto' simulates every candidate "
        "and picks the minimum-makespan one",
    )
    fabric.add_argument("--scheme", default="qsgd4", choices=SCHEME_NAMES)
    fabric.add_argument(
        "--network", default=None, choices=sorted(NETWORKS),
        help="size the payload as this paper network's gradient "
        "(overrides --elements)",
    )
    fabric.add_argument(
        "--elements", type=int, default=2_000_000,
        help="gradient elements per collective",
    )
    fabric.add_argument(
        "--oversubscription", type=float, default=3.0,
        help="leaf-spine trunk oversubscription factor (>= 1.0)",
    )
    fabric.add_argument(
        "--fail-link", default=None, metavar="SRC:DST",
        help="inject a fault on this link (e.g. leaf0:spine1, "
        "host0:leaf0)",
    )
    fabric.add_argument(
        "--fail-at", type=float, default=0.0,
        help="failure time in simulated seconds",
    )
    fabric.add_argument(
        "--recover-at", type=float, default=None,
        help="recovery time; omit for a permanent failure (routes "
        "around it, or evicts unreachable ranks like the resilience "
        "loop)",
    )
    fabric.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the per-link occupancy Chrome trace here",
    )
    fabric.add_argument(
        "--sweep", action="store_true",
        help="run the K-sweep study table + crossover chart instead "
        "of a single cell",
    )
    fabric.add_argument(
        "--sweep-ranks", type=int, nargs="*", default=None,
        help="rank counts for --sweep (default 64..1024)",
    )
    fabric.add_argument(
        "--crossval", action="store_true",
        help="gate the fabric against reality: measure a K=4 process-"
        "engine run and require phase shares to agree within "
        "tolerance (exit 1 past it)",
    )
    fabric.add_argument(
        "--link-gbps", type=float, default=None,
        help="paced link rate of the --crossval measured run",
    )
    fabric.add_argument("--seed", type=int, default=0)
    fabric.set_defaults(handler=_cmd_fabric)
    serve = sub.add_parser(
        "serve",
        help="run the training-as-a-service daemon (job queue + "
        "REST/JSON API + bounded runner pool + crash-resume)",
    )
    serve.add_argument(
        "--root", required=True,
        help="persistent store directory (job records, checkpoints, "
        "metric streams); a restarted daemon rescans it and resumes",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="API port (0 = pick a free one, printed at startup)",
    )
    serve.add_argument(
        "--max-ranks", type=int, default=4,
        help="total concurrent ranks across all running jobs; each "
        "job occupies its declared world_size",
    )
    serve.add_argument(
        "--queue", default="priority", choices=QUEUE_NAMES,
        help="dispatch order: 'priority' (higher first, FIFO "
        "tie-break) or 'fifo'",
    )
    serve.add_argument(
        "--scheduler", default="first-fit", choices=SCHEDULER_NAMES,
        help="admission control: 'first-fit' packs small jobs around "
        "a wide waiting one, 'strict' never bypasses the queue head",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.05,
        help="scheduler tick interval in seconds",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=3,
        help="times a job whose runner dies without a result is "
        "requeued to resume before being evicted",
    )
    serve.add_argument(
        "--grace", type=float, default=5.0,
        help="seconds between a cancellation SIGTERM and the SIGKILL",
    )
    serve.add_argument(
        "--drain", action="store_true",
        help="exit once every stored job is terminal (batch mode)",
    )
    serve.set_defaults(handler=_cmd_serve)
    sub.add_parser(
        "insights", help="re-derive the paper's summary answers"
    ).set_defaults(handler=_cmd_insights)
    calibration = sub.add_parser(
        "calibration", help="compare simulation to the published tables"
    )
    calibration.add_argument("-v", "--verbose", action="store_true")
    calibration.set_defaults(handler=_cmd_calibration)
    sub.add_parser(
        "compression", help="wire bits/element per network and scheme"
    ).set_defaults(handler=_cmd_compression)
    sub.add_parser("networks", help="show Figure 3").set_defaults(
        handler=_cmd_networks
    )
    sub.add_parser("machines", help="show Figure 2").set_defaults(
        handler=_cmd_machines
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
