"""Compression report: wire bits per gradient element, per network.

Summarizes what each scheme actually puts on the wire for each
paper-scale network — the quantity behind every performance figure.
This is where the stock-1bitSGD artefact is visible as *data*: on
convolutional networks its column layout yields more bits per element
than full precision (Section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import NETWORKS
from ..simulator.costmodel import NetworkCostModel

__all__ = ["CompressionCell", "compression_report", "print_compression_report"]

REPORT_SCHEMES = ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit*",
                  "1bit")


@dataclass(frozen=True)
class CompressionCell:
    network: str
    scheme: str
    bits_per_element: float
    compression_vs_32bit: float


def compression_report(
    networks: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = REPORT_SCHEMES,
) -> list[CompressionCell]:
    """Wire rate of every (network, scheme) pair at 8 ranks."""
    names = networks if networks is not None else tuple(NETWORKS)
    cells = []
    for network in names:
        spec = NETWORKS[network]
        baseline = None
        for scheme in schemes:
            cost = NetworkCostModel(spec, scheme, world_size=8)
            bits = 8.0 * cost.total_whole_bytes / spec.parameter_count
            if scheme == "32bit":
                baseline = bits
            cells.append(
                CompressionCell(
                    network=network,
                    scheme=scheme,
                    bits_per_element=bits,
                    compression_vs_32bit=(
                        baseline / bits if baseline else 1.0
                    ),
                )
            )
    return cells


def print_compression_report() -> list[CompressionCell]:
    """Print the per-network wire-rate matrix; return the cells."""
    from .report import print_table

    cells = compression_report()
    by_network: dict[str, dict[str, CompressionCell]] = {}
    for cell in cells:
        by_network.setdefault(cell.network, {})[cell.scheme] = cell
    rows = []
    for network, row in by_network.items():
        rows.append(
            [network]
            + [row[scheme].bits_per_element for scheme in REPORT_SCHEMES]
        )
    print_table(
        ["Network"] + list(REPORT_SCHEMES),
        rows,
        title="Wire bits per gradient element (8 ranks, includes "
        "scales/headers)",
    )
    return cells
