"""Plain-text table and series rendering for the study harness.

Benchmarks and examples print the same rows/series the paper reports;
these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> None:
    if title:
        print(f"\n{title}")
        print("=" * len(title))
    print(format_table(headers, rows))


def format_series(
    label: str, xs: Sequence[object], ys: Sequence[float]
) -> str:
    """Render one figure series as 'label: (x, y) ...'."""
    points = " ".join(f"({x}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{label}: {points}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "/"
    return str(value)
