"""Bucket-size sensitivity study (paper Section 5.1).

The paper: bucketing "can be used to directly throttle the added
variance of the quantization process, at the cost of extra
communication"; on AlexNet, 4-bit QSGD with bucket 8192 ends >0.6%
below full precision while bucket 512 recovers it, and quantizing too
aggressively (2-bit) "can lead to significant accuracy loss".

At this repository's scale the same mechanism shows up one notch
later: tuned buckets keep every scheme at full-precision accuracy,
while 2-bit with oversized buckets collapses — the variance argument
made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import History, ParallelTrainer, TrainingConfig
from ..data import make_image_dataset
from ..models import tiny_alexnet

__all__ = ["BucketPoint", "run_bucket_study", "print_bucket_study"]

#: (scheme, bucket size) grid of the study
GRID: tuple[tuple[str, int | None], ...] = (
    ("32bit", None),
    ("qsgd4", 512),
    ("qsgd4", 8192),
    ("qsgd2", 128),
    ("qsgd2", 8192),
)


@dataclass(frozen=True)
class BucketPoint:
    scheme: str
    bucket_size: int | None
    final_accuracy: float
    bits_per_epoch_mb: float
    history: History

    @property
    def label(self) -> str:
        if self.bucket_size is None:
            return self.scheme
        return f"{self.scheme} (d={self.bucket_size})"


def run_bucket_study(
    epochs: int = 12, world_size: int = 4, seed: int = 0
) -> list[BucketPoint]:
    """Train the AlexNet-class model across the (scheme, bucket) grid."""
    dataset = make_image_dataset(
        num_classes=6, train_samples=384, test_samples=256,
        image_size=16, noise=1.2, seed=3,
    )
    points = []
    for scheme, bucket in GRID:
        config = TrainingConfig(
            scheme=scheme,
            bucket_size=bucket,
            exchange="mpi",
            world_size=world_size,
            batch_size=32,
            lr=0.02,
            lr_decay=0.97,
            seed=seed,
        )
        model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
        trainer = ParallelTrainer(model, config)
        history = trainer.fit(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, epochs=epochs,
        )
        points.append(
            BucketPoint(
                scheme=scheme,
                bucket_size=bucket,
                final_accuracy=history.final_test_accuracy,
                bits_per_epoch_mb=history.epochs[-1].comm_bytes / 1e6,
                history=history,
            )
        )
    return points


def print_bucket_study(epochs: int = 12) -> list[BucketPoint]:
    """Run and print the bucket-size sensitivity comparison."""
    from .report import print_table

    points = run_bucket_study(epochs=epochs)
    print_table(
        ["Variant", "Final acc", "Comm MB/epoch"],
        [
            [p.label, p.final_accuracy, p.bits_per_epoch_mb]
            for p in points
        ],
        title=(
            "Bucket-size sensitivity (paper Section 5.1, "
            "'Impact of Bucket Size')"
        ),
    )
    return points
