"""Figure 16 (right): quantization speedup vs model-size/compute ratio.

The paper grows AlexNet's model artificially ("dummy models") and
plots the 8-bit-over-32-bit speedup on 8-GPU NCCL against the ratio of
model size to computation (MB/GFLOPS).  The speedup approaches — but
never exceeds — the 4x bandwidth ratio between 8-bit and 32-bit
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..models.specs import GradientMatrixSpec, get_network
from ..simulator import simulate_spec

__all__ = ["ExtrapolationPoint", "dummy_alexnet", "extrapolation_curve",
           "print_extrapolation"]


@dataclass(frozen=True)
class ExtrapolationPoint:
    scale: float
    mb_per_gflops: float
    speedup: float


def dummy_alexnet(scale: float):
    """AlexNet with its fully connected layers scaled by ``scale``.

    Mirrors the paper's dummy-model methodology: computation stays
    AlexNet's, while the model (hence the gradient payload) grows.
    """
    base = get_network("AlexNet")
    layers = []
    for layer in base.layers:
        if layer.kind == "fc":
            layers.append(
                GradientMatrixSpec(
                    layer.name,
                    layer.rows,
                    max(1, int(layer.cols * scale)),
                    layer.kind,
                )
            )
        else:
            layers.append(layer)
    return replace(
        base, name=f"AlexNet-x{scale:g}", layers=tuple(layers)
    )


def extrapolation_curve(
    scales: tuple[float, ...] = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
                                 300.0, 1000.0),
    world_size: int = 8,
    machine: str = "p2.8xlarge",
) -> list[ExtrapolationPoint]:
    """Speedup of qsgd8 over 32bit NCCL as the dummy model grows."""
    points = []
    for scale in scales:
        spec = dummy_alexnet(scale)
        full = simulate_spec(spec, machine, "32bit", "nccl", world_size)
        quantized = simulate_spec(spec, machine, "qsgd8", "nccl", world_size)
        points.append(
            ExtrapolationPoint(
                scale=scale,
                mb_per_gflops=spec.model_megabytes / spec.gflops_per_sample,
                speedup=(
                    full.iteration_seconds / quantized.iteration_seconds
                ),
            )
        )
    return points


def print_extrapolation() -> list[ExtrapolationPoint]:
    """Print the Figure 16 (right) curve; return the points."""
    points = extrapolation_curve()
    print(
        "\nFigure 16 (right): 8-bit vs 32-bit speedup on 8-GPU NCCL "
        "as the AlexNet dummy model grows"
    )
    for p in points:
        bar = "#" * int(round(p.speedup * 10))
        print(
            f"  MB/GFLOPS={p.mb_per_gflops:9.1f}  "
            f"speedup={p.speedup:5.2f}x  {bar}"
        )
    ceiling = max(p.speedup for p in points)
    print(f"  asymptote observed: {ceiling:.2f}x (bandwidth bound: ~4x)")
    return points
