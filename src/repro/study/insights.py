"""The paper's five headline questions, answered from reproduced data.

Section 1 of the paper summarizes its study as five questions.  This
module re-derives each answer from the simulator (and, for the
accuracy question, optionally from real quick-scale training), so the
reproduction's conclusions can be checked mechanically rather than by
reading tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator import simulate
from .extrapolation import extrapolation_curve
from .throughput import ec2_machine_for

__all__ = ["Insight", "evaluate_insights", "print_insights"]


@dataclass(frozen=True)
class Insight:
    """One of the paper's summary questions with the reproduced verdict."""

    question: str
    paper_answer: str
    reproduced_answer: str
    holds: bool
    evidence: str


def _rate(network, scheme, exchange, world_size):
    return simulate(
        network, ec2_machine_for(world_size), scheme, exchange, world_size
    ).samples_per_second


def _insight_performance() -> Insight:
    alexnet = _rate("AlexNet", "qsgd4", "mpi", 8) / _rate(
        "AlexNet", "32bit", "mpi", 8
    )
    inception_nccl = _rate("BN-Inception", "qsgd4", "nccl", 8) / _rate(
        "BN-Inception", "32bit", "nccl", 8
    )
    vgg_nccl = _rate("VGG19", "qsgd4", "nccl", 8) / _rate(
        "VGG19", "32bit", "nccl", 8
    )
    holds = alexnet > 2.0 and inception_nccl < 1.35 and vgg_nccl < 1.6
    return Insight(
        question="Does low-precision always help performance?",
        paper_answer=(
            "Not always — large gains over MPI on big models, almost "
            "none over NCCL (<=1.4x, VGG only)"
        ),
        reproduced_answer=(
            f"AlexNet/MPI speedup {alexnet:.1f}x, but BN-Inception/NCCL "
            f"only {inception_nccl:.2f}x and VGG/NCCL {vgg_nccl:.2f}x"
        ),
        holds=holds,
        evidence="simulate() over Figures 10/11 grid",
    )


def _insight_extreme_precision() -> Insight:
    gains = []
    for network in ("AlexNet", "VGG19", "ResNet50", "ResNet152"):
        q4 = _rate(network, "qsgd4", "mpi", 8)
        q2 = _rate(network, "qsgd2", "mpi", 8)
        gains.append(q2 / q4)
    worst = max(gains)
    return Insight(
        question="Is using extremely low precision ever helpful?",
        paper_answer=(
            "Rarely — diminishing returns below 4 bits; 1-bit rarely "
            "outperforms 4-bit"
        ),
        reproduced_answer=(
            f"2-bit over 4-bit buys at most {worst:.2f}x across the "
            "image networks at 8 GPUs"
        ),
        holds=worst < 1.25,
        evidence="qsgd2 vs qsgd4 over MPI at 8 GPUs",
    )


def _insight_programming_models() -> Insight:
    # a native low-precision NCCL would skip the simulated-quantization
    # penalty: compare current prototype vs comm-only lower bound
    result = simulate("VGG19", "p2.8xlarge", "qsgd4", "nccl", 8)
    ideal_iteration = result.compute_seconds + result.comm_seconds
    potential = result.iteration_seconds / ideal_iteration
    return Insight(
        question=(
            "Have current programming models unleashed the full "
            "potential of low precision?"
        ),
        paper_answer=(
            "No — NCCL hardcodes 32-bit reduction; native support could "
            "be up to ~1.4x faster than the prototype"
        ),
        reproduced_answer=(
            f"a native low-precision allreduce would be {potential:.2f}x "
            "faster than the simulated-NCCL prototype on VGG19"
        ),
        holds=1.05 < potential < 1.6,
        evidence="quantization overhead share of the NCCL-sim iteration",
    )


def _insight_sixteen_gpus() -> Insight:
    worthwhile = []
    for network in ("AlexNet", "VGG19", "ResNet50", "ResNet152",
                    "BN-Inception", "ResNet110"):
        r8 = _rate(network, "qsgd4", "mpi", 8)
        r16 = _rate(network, "qsgd4", "mpi", 16)
        # 16 GPUs cost 2x the 8-GPU instance: worth it only if
        # throughput grows by more than 2x
        if r16 > 2 * r8:
            worthwhile.append(network)
    return Insight(
        question="Do we really need 16 GPUs on a single instance?",
        paper_answer=(
            "Rarely — few scenarios justify doubling the price of the "
            "8-GPU instance"
        ),
        reproduced_answer=(
            f"{len(worthwhile)} of 6 networks double their throughput "
            f"at 16 GPUs ({worthwhile or 'none'})"
        ),
        holds=len(worthwhile) == 0,
        evidence="qsgd4 throughput at 8 vs 16 GPUs over MPI",
    )


def _insight_extrapolation() -> Insight:
    points = extrapolation_curve(scales=(0.1, 1000.0))
    small, large = points[0].speedup, points[-1].speedup
    return Insight(
        question=(
            "When would extreme quantization matter? "
            "(communication-to-computation outlook)"
        ),
        paper_answer=(
            "Only in a much higher MB/GFLOPS regime than any existing "
            "network; bounded by the 4x bandwidth ratio"
        ),
        reproduced_answer=(
            f"8-bit speedup grows from {small:.2f}x (existing networks) "
            f"to {large:.2f}x (1000x dummy model), below the 4x bound"
        ),
        holds=small < 1.1 and 1.5 < large <= 4.0,
        evidence="Figure 16 (right) dummy-model sweep",
    )


def evaluate_insights() -> list[Insight]:
    """Evaluate every performance-side insight from simulated data.

    (The accuracy insight — "does low precision always hurt accuracy?"
    — needs real training runs; see the Figure 5 study.)
    """
    return [
        _insight_performance(),
        _insight_extreme_precision(),
        _insight_programming_models(),
        _insight_sixteen_gpus(),
        _insight_extrapolation(),
    ]


def print_insights() -> list[Insight]:
    """Print the insight scoreboard; return the insights."""
    insights = evaluate_insights()
    print("\nPaper insights, re-derived from the reproduction:")
    for insight in insights:
        verdict = "HOLDS" if insight.holds else "DIVERGES"
        print(f"\n  Q: {insight.question}")
        print(f"     paper:      {insight.paper_answer}")
        print(f"     reproduced: {insight.reproduced_answer}")
        print(f"     verdict:    {verdict}  [{insight.evidence}]")
    return insights
