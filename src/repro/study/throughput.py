"""Figures 10 and 11: samples-per-second tables on EC2.

Regenerates the paper's throughput tables (six networks x seven
schemes x 1-16 GPUs for MPI; five networks x five schemes x 1-8 GPUs
for NCCL) from the performance simulator, and compares each cell
against the published value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator import PAPER_MPI_TABLE, PAPER_NCCL_TABLE, simulate
from .report import print_table

__all__ = [
    "ec2_machine_for",
    "throughput_table",
    "print_throughput_tables",
    "MPI_SCHEMES",
    "NCCL_SCHEMES",
    "MPI_NETWORKS",
    "NCCL_NETWORKS",
]

MPI_SCHEMES = ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit", "1bit*")
NCCL_SCHEMES = ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2")
MPI_NETWORKS = (
    "AlexNet",
    "ResNet50",
    "ResNet110",
    "ResNet152",
    "VGG19",
    "BN-Inception",
)
NCCL_NETWORKS = (
    "AlexNet",
    "ResNet50",
    "ResNet152",
    "VGG19",
    "BN-Inception",
)


def ec2_machine_for(world_size: int) -> str:
    """Smallest EC2 P2 instance with ``world_size`` GPUs."""
    if world_size == 1:
        return "p2.xlarge"
    if world_size <= 8:
        return "p2.8xlarge"
    return "p2.16xlarge"


@dataclass(frozen=True)
class ThroughputCell:
    network: str
    scheme: str
    world_size: int
    simulated: float
    paper: float | None

    @property
    def relative_error(self) -> float | None:
        if self.paper is None:
            return None
        return (self.simulated - self.paper) / self.paper


def throughput_table(exchange: str) -> list[ThroughputCell]:
    """All cells of Figure 10 (mpi) or Figure 11 (nccl), simulated."""
    if exchange == "mpi":
        networks, schemes = MPI_NETWORKS, MPI_SCHEMES
        gpu_counts = (1, 2, 4, 8, 16)
        paper_table = PAPER_MPI_TABLE
    elif exchange == "nccl":
        networks, schemes = NCCL_NETWORKS, NCCL_SCHEMES
        gpu_counts = (1, 2, 4, 8)
        paper_table = PAPER_NCCL_TABLE
    else:
        raise ValueError(f"exchange must be 'mpi' or 'nccl', got {exchange!r}")

    cells = []
    for network in networks:
        for scheme in schemes:
            for world_size in gpu_counts:
                if world_size == 1 and scheme != "32bit":
                    continue  # the paper only runs 32bit at 1 GPU
                result = simulate(
                    network,
                    ec2_machine_for(world_size),
                    scheme,
                    exchange,
                    world_size,
                )
                paper = paper_table.get(network, {}).get(scheme, {}).get(
                    world_size
                )
                cells.append(
                    ThroughputCell(
                        network,
                        scheme,
                        world_size,
                        result.samples_per_second,
                        paper,
                    )
                )
    return cells


def print_throughput_tables(exchange: str) -> list[ThroughputCell]:
    """Print Figure 10/11 tables in the paper's layout; return cells."""
    cells = throughput_table(exchange)
    gpu_counts = (1, 2, 4, 8, 16) if exchange == "mpi" else (1, 2, 4, 8)
    figure = "Figure 10" if exchange == "mpi" else "Figure 11"
    by_network: dict[str, dict[str, dict[int, ThroughputCell]]] = {}
    for cell in cells:
        by_network.setdefault(cell.network, {}).setdefault(
            cell.scheme, {}
        )[cell.world_size] = cell

    for network, schemes in by_network.items():
        rows = []
        for scheme, cols in schemes.items():
            row: list[object] = [scheme]
            for k in gpu_counts:
                cell = cols.get(k)
                row.append(None if cell is None else cell.simulated)
            rows.append(row)
        print_table(
            ["Precision"] + [f"{k} GPUs" for k in gpu_counts],
            rows,
            title=(
                f"{figure} [{exchange.upper()}] {network} — simulated "
                "samples/second"
            ),
        )
    return cells
