"""Figure 5: accuracy-versus-epoch under each quantization scheme.

These experiments run *real* training on the numpy substrate with the
byte-exact quantized exchanges — the scaled-down equivalent of the
paper's CNTK runs.  Each sub-figure of Figure 5 maps to one experiment
below; the schemes and bucket sizes match the paper's legends.

Two scales are provided: ``quick`` (seconds per run; used by tests and
benchmarks) and ``full`` (minutes per run; richer curves for
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core import History, ParallelTrainer, TrainingConfig
from ..data import make_image_dataset, make_sequence_dataset
from ..models import speech_lstm, tiny_alexnet, tiny_resnet

__all__ = ["AccuracyExperiment", "FIG5_EXPERIMENTS", "run_accuracy_experiment"]

#: (scheme, bucket size or None, legend label) per sub-figure
_FIG5A_SCHEMES = [
    ("1bit", None, "1bitSGD"),
    ("1bit*", 512, "1bitSGD* (d=512)"),
    ("1bit*", 64, "1bitSGD* (d=64)"),
    ("qsgd2", None, "QSGD 2bit"),
    ("qsgd4", None, "QSGD 4bit"),
    ("qsgd8", None, "QSGD 8bit"),
    ("32bit", None, "32bit"),
]
_FIG5B_SCHEMES = [("qsgd8", None, "QSGD 8bit"), ("32bit", None, "32bit")]
_FIG5C_SCHEMES = [
    ("1bit*", 64, "1bitSGD*"),
    ("32bit", None, "32bit"),
    ("qsgd4", None, "QSGD 4bit"),
    ("qsgd8", None, "QSGD 8bit"),
]
_FIG5D_SCHEMES = [
    ("1bit", None, "1bitSGD"),
    ("32bit", None, "32bit"),
    ("qsgd2", None, "QSGD 2bit"),
    ("qsgd4", None, "QSGD 4bit"),
    ("qsgd8", None, "QSGD 8bit"),
]
_FIG5E_SCHEMES = _FIG5D_SCHEMES


@dataclass(frozen=True)
class AccuracyExperiment:
    """One sub-figure of Figure 5."""

    figure: str
    title: str
    model_builder: Callable[[int], object]  # seed -> model
    dataset_builder: Callable[[], object]
    schemes: list[tuple[str, int | None, str]]
    lr: float
    lr_decay: float
    batch_size: int
    quick_epochs: int
    full_epochs: int
    is_sequence: bool = False


def _image_dataset(samples: int):
    return lambda: make_image_dataset(
        num_classes=6,
        train_samples=samples,
        test_samples=samples // 2,
        image_size=16,
        noise=1.2,
        seed=3,
    )


def _sequence_dataset():
    return make_sequence_dataset(
        num_classes=6, train_samples=384, test_samples=192, seed=5
    )


FIG5_EXPERIMENTS: dict[str, AccuracyExperiment] = {
    "fig5a": AccuracyExperiment(
        figure="fig5a",
        title="AlexNet-class / image (test accuracy per epoch)",
        model_builder=lambda seed: tiny_alexnet(
            num_classes=6, image_size=16, seed=seed
        ),
        dataset_builder=_image_dataset(384),
        schemes=_FIG5A_SCHEMES,
        lr=0.01,
        lr_decay=0.93,
        batch_size=32,
        quick_epochs=8,
        full_epochs=30,
    ),
    "fig5b": AccuracyExperiment(
        figure="fig5b",
        title="ResNet152-class / image (test accuracy per epoch)",
        model_builder=lambda seed: tiny_resnet(
            num_classes=6, blocks_per_stage=3, seed=seed
        ),
        dataset_builder=_image_dataset(256),
        schemes=_FIG5B_SCHEMES,
        lr=0.04,
        lr_decay=0.93,
        batch_size=32,
        quick_epochs=6,
        full_epochs=24,
    ),
    "fig5c": AccuracyExperiment(
        figure="fig5c",
        title="ResNet50-class / image (test accuracy per epoch)",
        model_builder=lambda seed: tiny_resnet(
            num_classes=6, blocks_per_stage=2, seed=seed
        ),
        dataset_builder=_image_dataset(320),
        schemes=_FIG5C_SCHEMES,
        lr=0.04,
        lr_decay=0.93,
        batch_size=32,
        quick_epochs=8,
        full_epochs=30,
    ),
    "fig5d": AccuracyExperiment(
        figure="fig5d",
        title="ResNet110-class / CIFAR-like (test accuracy per epoch)",
        model_builder=lambda seed: tiny_resnet(
            num_classes=6, blocks_per_stage=2, widths=(8, 16, 32), seed=seed
        ),
        dataset_builder=_image_dataset(384),
        schemes=_FIG5D_SCHEMES,
        lr=0.04,
        lr_decay=0.93,
        batch_size=32,
        quick_epochs=8,
        full_epochs=30,
    ),
    "fig5e": AccuracyExperiment(
        figure="fig5e",
        title="LSTM / speech-like (training loss per time)",
        model_builder=lambda seed: speech_lstm(num_classes=6, seed=seed),
        dataset_builder=_sequence_dataset,
        schemes=_FIG5E_SCHEMES,
        lr=0.05,
        lr_decay=0.95,
        batch_size=16,
        quick_epochs=8,
        full_epochs=20,
        is_sequence=True,
    ),
}


def run_accuracy_experiment(
    figure: str,
    scale: str = "quick",
    world_size: int = 4,
    exchange: str = "mpi",
    seed: int = 0,
    verbose: bool = False,
) -> dict[str, History]:
    """Run one Figure 5 sub-figure; returns label -> history."""
    try:
        experiment = FIG5_EXPERIMENTS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(FIG5_EXPERIMENTS)}"
        ) from None
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    epochs = (
        experiment.quick_epochs if scale == "quick"
        else experiment.full_epochs
    )
    dataset = experiment.dataset_builder()

    histories: dict[str, History] = {}
    for scheme, bucket, label in experiment.schemes:
        config = TrainingConfig(
            scheme=scheme,
            bucket_size=bucket,
            exchange=exchange,
            world_size=world_size,
            batch_size=experiment.batch_size,
            lr=experiment.lr,
            lr_decay=experiment.lr_decay,
            seed=seed,
        )
        model = experiment.model_builder(seed + 1)
        trainer = ParallelTrainer(model, config)
        histories[label] = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=epochs,
            verbose=verbose,
        )
    return histories


def run_accuracy_experiment_multiseed(
    figure: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: str = "quick",
    world_size: int = 4,
    exchange: str = "mpi",
) -> dict[str, list[History]]:
    """Repeat one Figure 5 sub-figure across seeds.

    Toy-scale training has seed-level variance of several accuracy
    points; EXPERIMENTS.md quotes multi-seed means wherever a claim is
    about a gap between schemes.
    """
    runs: dict[str, list[History]] = {}
    for seed in seeds:
        histories = run_accuracy_experiment(
            figure, scale=scale, world_size=world_size, exchange=exchange,
            seed=seed,
        )
        for label, history in histories.items():
            runs.setdefault(label, []).append(history)
    return runs
