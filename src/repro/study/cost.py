"""Figure 16 (left): price vs accuracy of training to convergence.

For each ImageNet network the paper plots the dollar cost of training
for a number of epochs (at current EC2 pricing, using the cheapest
configuration derived from the scalability results) against the
accuracy reached.  Accuracy-versus-epoch is modelled with a saturating
learning curve anchored at the published (epochs-to-converge, final
accuracy) recipe of Figure 3 — the real curve requires the full
ImageNet run the paper itself spent 1400 machine-hours on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..models.specs import get_network
from ..simulator import MACHINES, simulate
from .report import print_table

__all__ = ["CostPoint", "cheapest_configuration", "cost_accuracy_curve",
           "print_cost_accuracy"]

#: networks shown in Figure 16 left
COST_NETWORKS = ("AlexNet", "ResNet50", "ResNet152")

#: the paper trains the cost study with 8-bit QSGD over NCCL
COST_SCHEME = "qsgd8"
COST_EXCHANGE = "nccl"


@dataclass(frozen=True)
class CostPoint:
    network: str
    epochs: int
    dollars: float
    accuracy: float
    machine: str
    world_size: int


def cheapest_configuration(network: str) -> tuple[str, int, float]:
    """(machine, world size, $/epoch) minimizing training cost.

    Scans the EC2 instances of Figure 2 at every supported GPU count
    with the study's 8-bit NCCL configuration.
    """
    spec = get_network(network)
    best: tuple[str, int, float] | None = None
    for machine_name, machine in MACHINES.items():
        if machine.gpu.name != "K80":
            continue  # the cost study prices EC2 only
        for world_size in spec.gpu_counts:
            if not machine.supports(world_size, COST_EXCHANGE):
                continue
            result = simulate(
                network, machine_name, COST_SCHEME, COST_EXCHANGE, world_size
            )
            hours = result.epoch_seconds(spec.samples_per_epoch) / 3600.0
            dollars_per_epoch = hours * machine.price_per_hour
            if best is None or dollars_per_epoch < best[2]:
                best = (machine_name, world_size, dollars_per_epoch)
    assert best is not None
    return best


def _accuracy_at(network: str, epochs: int) -> float:
    """Saturating learning curve anchored at the published recipe."""
    spec = get_network(network)
    # reaches ~98% of final accuracy at the published epoch budget
    rate = 4.0 / spec.epochs_to_converge
    return spec.published_accuracy * (1.0 - math.exp(-rate * epochs))


def cost_accuracy_curve(
    network: str, fractions: tuple[float, ...] = (0.25, 0.5, 1.0)
) -> list[CostPoint]:
    """Cost/accuracy points for training ``fractions`` of the recipe."""
    spec = get_network(network)
    machine, world_size, dollars_per_epoch = cheapest_configuration(network)
    points = []
    for fraction in fractions:
        epochs = max(1, round(fraction * spec.epochs_to_converge))
        points.append(
            CostPoint(
                network=network,
                epochs=epochs,
                dollars=epochs * dollars_per_epoch,
                accuracy=_accuracy_at(network, epochs),
                machine=machine,
                world_size=world_size,
            )
        )
    return points


def print_cost_accuracy() -> list[CostPoint]:
    """Print the Figure 16 (left) point cloud; return the points."""
    points = []
    for network in COST_NETWORKS:
        points.extend(cost_accuracy_curve(network))
    print_table(
        ["Network", "Epochs", "Cost ($)", "Accuracy (%)", "Machine", "GPUs"],
        [
            [p.network, p.epochs, p.dollars, p.accuracy, p.machine,
             p.world_size]
            for p in points
        ],
        title="Figure 16 (left): EC2 training cost vs accuracy "
        f"({COST_SCHEME} over {COST_EXCHANGE.upper()})",
    )
    return points
