"""Fabric study: collective makespans at datacenter scale.

The paper measures up to 16 GPUs on one machine; this study extends
the question — "which low-precision collective wins?" — to K=64..1024
ranks on a simulated leaf-spine fabric, where the answer depends on
payload, scheme, and oversubscription rather than on a single bus:

* ring amortizes bandwidth but pays O(K) latency rounds, so it loses
  its crown as K grows and the per-chunk payload shrinks;
* tree and butterfly pay O(log K) rounds of full/halved payloads;
* hierarchical keeps bulk traffic on intra-node links and sends one
  leader per host across the oversubscribed trunks — the regime where
  aggressive quantization pays the most.

Every point is one event-driven simulation with per-link FIFO
queueing (:func:`repro.fabric.simulate.run_collective`), so trunk
contention and incast are priced in, not modelled away.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import viz
from ..fabric.schedule import PATTERN_NAMES
from ..fabric.simulate import run_collective
from ..fabric.topology import leaf_spine
from .report import print_table

__all__ = [
    "SWEEP_WORLD_SIZES",
    "SWEEP_SCHEMES",
    "FabricSweepPoint",
    "fabric_sweep",
    "print_fabric_sweep",
]

#: default rank counts of the simulation-only sweep
SWEEP_WORLD_SIZES = (64, 128, 256, 512, 1024)
#: default schemes: full precision, a mid QSGD point, and 1-bit
SWEEP_SCHEMES = ("32bit", "qsgd4", "1bit")
#: gradient elements per collective (AlexNet-scale payload)
SWEEP_ELEMENTS = 2_000_000


@dataclass(frozen=True)
class FabricSweepPoint:
    """One simulated (pattern, scheme, K) cell of the sweep."""

    pattern: str
    scheme: str
    world_size: int
    makespan_seconds: float
    total_wire_bytes: int
    transfers: int
    max_link_utilization: float


def fabric_sweep(
    world_sizes: tuple[int, ...] = SWEEP_WORLD_SIZES,
    patterns: tuple[str, ...] = PATTERN_NAMES,
    schemes: tuple[str, ...] = SWEEP_SCHEMES,
    total_elements: int = SWEEP_ELEMENTS,
    oversubscription: float = 3.0,
) -> list[FabricSweepPoint]:
    """Simulate every (pattern, scheme, K) cell on a leaf-spine Clos."""
    points: list[FabricSweepPoint] = []
    for world_size in world_sizes:
        topology = leaf_spine(
            world_size, oversubscription=oversubscription
        )
        for scheme in schemes:
            for pattern in patterns:
                result = run_collective(
                    topology, pattern, total_elements, scheme=scheme
                )
                busiest = result.busiest_links(1)
                points.append(
                    FabricSweepPoint(
                        pattern=pattern,
                        scheme=scheme,
                        world_size=world_size,
                        makespan_seconds=result.makespan_seconds,
                        total_wire_bytes=result.total_wire_bytes,
                        transfers=result.completed_transfers,
                        max_link_utilization=(
                            busiest[0][1] if busiest else 0.0
                        ),
                    )
                )
    return points


def print_fabric_sweep(
    world_sizes: tuple[int, ...] = SWEEP_WORLD_SIZES,
    schemes: tuple[str, ...] = SWEEP_SCHEMES,
    total_elements: int = SWEEP_ELEMENTS,
    chart_scheme: str = "qsgd4",
) -> list[FabricSweepPoint]:
    """Print the sweep table plus the pattern-crossover chart."""
    points = fabric_sweep(
        world_sizes=world_sizes,
        schemes=schemes,
        total_elements=total_elements,
    )
    rows = [
        [
            point.world_size,
            point.pattern,
            point.scheme,
            f"{point.makespan_seconds * 1e3:9.3f}",
            f"{point.total_wire_bytes / 1e6:9.1f}",
            point.transfers,
            f"{point.max_link_utilization:6.1%}",
        ]
        for point in points
    ]
    print_table(
        ["K", "Pattern", "Scheme", "ms", "Wire MB", "Transfers",
         "Hot link"],
        rows,
        title=(
            f"Fabric sweep: leaf-spine Clos, "
            f"{total_elements / 1e6:.1f}M gradient elements"
        ),
    )
    series = {
        pattern: [
            next(
                p.makespan_seconds * 1e3
                for p in points
                if p.pattern == pattern
                and p.scheme == chart_scheme
                and p.world_size == k
            )
            for k in world_sizes
        ]
        for pattern in PATTERN_NAMES
    }
    print()
    print(
        f"makespan (ms) vs K={list(world_sizes)} at {chart_scheme} — "
        "the ring/tree crossover the selector exploits:"
    )
    print(viz.line_chart(series, y_label="ms per allreduce"))
    return points
