"""Experiment harness: one entry per table/figure of the paper."""

from .accuracy import (
    FIG5_EXPERIMENTS,
    AccuracyExperiment,
    run_accuracy_experiment,
    run_accuracy_experiment_multiseed,
)
from .bucket_size import BucketPoint, print_bucket_study, run_bucket_study
from .compression import (
    CompressionCell,
    compression_report,
    print_compression_report,
)
from .cost import (
    CostPoint,
    cheapest_configuration,
    cost_accuracy_curve,
    print_cost_accuracy,
)
from .extrapolation import (
    ExtrapolationPoint,
    dummy_alexnet,
    extrapolation_curve,
    print_extrapolation,
)
from .fabric import (
    FabricSweepPoint,
    fabric_sweep,
    print_fabric_sweep,
)
from .insights import Insight, evaluate_insights, print_insights
from .layer_sensitivity import (
    SensitivityResult,
    print_layer_sensitivity,
    run_layer_sensitivity,
)
from .performance import EpochBar, epoch_bars, print_epoch_bars
from .registry import EXPERIMENTS, Experiment, run_experiment
from .report import format_series, format_table, print_table
from .scalability import (
    ScalabilitySeries,
    print_scalability,
    scalability_series,
)
from .throughput import (
    ThroughputCell,
    ec2_machine_for,
    print_throughput_tables,
    throughput_table,
)

__all__ = [
    "BucketPoint",
    "CompressionCell",
    "compression_report",
    "print_compression_report",
    "print_bucket_study",
    "run_bucket_study",
    "FIG5_EXPERIMENTS",
    "AccuracyExperiment",
    "run_accuracy_experiment",
    "run_accuracy_experiment_multiseed",
    "CostPoint",
    "cheapest_configuration",
    "cost_accuracy_curve",
    "print_cost_accuracy",
    "ExtrapolationPoint",
    "dummy_alexnet",
    "extrapolation_curve",
    "print_extrapolation",
    "FabricSweepPoint",
    "fabric_sweep",
    "print_fabric_sweep",
    "Insight",
    "evaluate_insights",
    "print_insights",
    "SensitivityResult",
    "print_layer_sensitivity",
    "run_layer_sensitivity",
    "EpochBar",
    "epoch_bars",
    "print_epoch_bars",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "format_series",
    "format_table",
    "print_table",
    "ScalabilitySeries",
    "print_scalability",
    "scalability_series",
    "ThroughputCell",
    "ec2_machine_for",
    "print_throughput_tables",
    "throughput_table",
]
