"""Experiment registry: every table/figure of the paper, by id.

The registry maps each experiment id used in DESIGN.md / EXPERIMENTS.md
to a short description and the callable that regenerates it.  The
benchmark suite iterates this registry so that every figure has a
bench target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .accuracy import FIG5_EXPERIMENTS, run_accuracy_experiment
from .cost import print_cost_accuracy
from .extrapolation import print_extrapolation
from .fabric import print_fabric_sweep
from .performance import FIGURE_SETUPS, print_epoch_bars
from .scalability import SCALABILITY_SETUPS, print_scalability
from .throughput import print_throughput_tables

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper."""

    exp_id: str
    paper_artefact: str
    description: str
    runner: Callable[[], object]


def _accuracy_runner(figure: str) -> Callable[[], object]:
    return lambda: run_accuracy_experiment(figure, scale="quick")


def _build_registry() -> dict[str, Experiment]:
    registry: dict[str, Experiment] = {}
    for figure, experiment in FIG5_EXPERIMENTS.items():
        registry[figure] = Experiment(
            exp_id=figure,
            paper_artefact=f"Figure 5 ({figure[-1]})",
            description=experiment.title,
            runner=_accuracy_runner(figure),
        )
    for figure in FIGURE_SETUPS:
        machine, exchange, _, _ = FIGURE_SETUPS[figure]
        registry[figure] = Experiment(
            exp_id=figure,
            paper_artefact=f"Figure {figure[3:]}",
            description=(
                f"time per epoch on {machine} over {exchange.upper()}"
            ),
            runner=lambda f=figure: print_epoch_bars(f),
        )
    registry["fig10"] = Experiment(
        "fig10",
        "Figure 10",
        "samples/second tables, EC2 over MPI",
        lambda: print_throughput_tables("mpi"),
    )
    registry["fig11"] = Experiment(
        "fig11",
        "Figure 11",
        "samples/second tables, EC2 over NCCL",
        lambda: print_throughput_tables("nccl"),
    )
    for figure in SCALABILITY_SETUPS:
        family, exchange, _, _ = SCALABILITY_SETUPS[figure]
        registry[figure] = Experiment(
            exp_id=figure,
            paper_artefact=f"Figure {figure[3:]}",
            description=f"scalability on {family} over {exchange.upper()}",
            runner=lambda f=figure: print_scalability(f),
        )
    registry["fig16-left"] = Experiment(
        "fig16-left",
        "Figure 16 (left)",
        "EC2 training cost vs accuracy",
        print_cost_accuracy,
    )
    registry["fig16-right"] = Experiment(
        "fig16-right",
        "Figure 16 (right)",
        "speedup vs model-size/compute ratio (dummy models)",
        print_extrapolation,
    )
    registry["fabric-sweep"] = Experiment(
        "fabric-sweep",
        "extension (fabric)",
        "collective makespans at K=64..256 on a leaf-spine Clos",
        # the quick registry cell stops at K=256; the benchmark suite
        # runs the full 64..1024 sweep
        lambda: print_fabric_sweep(world_sizes=(64, 128, 256)),
    )
    return registry


EXPERIMENTS: dict[str, Experiment] = _build_registry()


def run_experiment(exp_id: str) -> object:
    """Run one registered experiment by id."""
    try:
        experiment = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; expected one of "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return experiment.runner()
