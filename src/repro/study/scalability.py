"""Figures 12-15: scalability curves.

Scalability at K GPUs is defined (Section 5.3) as the configuration's
samples/second divided by the single-GPU full-precision rate of the
same network on the same hardware family.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator import simulate
from .report import format_series
from .throughput import ec2_machine_for

__all__ = ["ScalabilitySeries", "scalability_series", "print_scalability"]

#: figure id -> (machine family, exchange, schemes, GPU counts)
SCALABILITY_SETUPS = {
    "fig12": (
        "ec2",
        "mpi",
        ("32bit", "qsgd8", "qsgd4", "qsgd2", "1bit", "1bit*"),
        (1, 2, 4, 8, 16),
    ),
    "fig13": ("ec2", "nccl", ("32bit", "qsgd8", "qsgd4", "qsgd2"), (1, 2, 4, 8)),
    "fig14": ("dgx", "mpi", ("32bit", "qsgd4", "1bit", "1bit*"), (1, 2, 4, 8)),
    "fig15": ("dgx", "nccl", ("32bit", "qsgd4"), (1, 2, 4, 8)),
}

SCALABILITY_NETWORKS = (
    "AlexNet",
    "VGG19",
    "ResNet152",
    "ResNet50",
    "BN-Inception",
)


def _machine(family: str, world_size: int) -> str:
    if family == "ec2":
        return ec2_machine_for(world_size)
    if family == "dgx":
        return "dgx1"
    raise ValueError(f"unknown machine family {family!r}")


@dataclass(frozen=True)
class ScalabilitySeries:
    """One curve of Figures 12-15."""

    network: str
    scheme: str
    gpu_counts: tuple[int, ...]
    scalability: tuple[float, ...]

    @property
    def peak(self) -> float:
        return max(self.scalability)


def scalability_series(figure: str) -> list[ScalabilitySeries]:
    """All curves of one of Figures 12-15."""
    try:
        family, exchange, schemes, gpu_counts = SCALABILITY_SETUPS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(SCALABILITY_SETUPS)}"
        ) from None
    series = []
    for network in SCALABILITY_NETWORKS:
        base = simulate(
            network, _machine(family, 1), "32bit", "mpi", 1
        ).samples_per_second
        for scheme in schemes:
            values = []
            for world_size in gpu_counts:
                if world_size == 1:
                    values.append(1.0 if scheme == "32bit" else float("nan"))
                    continue
                rate = simulate(
                    network,
                    _machine(family, world_size),
                    scheme,
                    exchange,
                    world_size,
                ).samples_per_second
                values.append(rate / base)
            series.append(
                ScalabilitySeries(
                    network, scheme, tuple(gpu_counts), tuple(values)
                )
            )
    return series


def print_scalability(figure: str) -> list[ScalabilitySeries]:
    """Print one of Figures 12-15 as labelled series; return them."""
    try:
        family, exchange, _, _ = SCALABILITY_SETUPS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(SCALABILITY_SETUPS)}"
        ) from None
    series = scalability_series(figure)
    print(
        f"\n{figure}: scalability on {family} over {exchange.upper()} "
        "(samples/s relative to 1-GPU 32bit)"
    )
    for s in series:
        print(
            "  "
            + format_series(
                f"{s.network}/{s.scheme}", s.gpu_counts, s.scalability
            )
        )
    return series
