"""Layer-type sensitivity study (paper Section 5.1).

The paper observes that convolutional layers are more sensitive to
quantization noise than fully connected layers, by comparing variants
that quantize (1) all layers vs (2) effectively only non-conv layers.
This study runs that comparison directly: the same network, the same
aggressive codec, with quantization restricted to one layer kind at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import History, ParallelTrainer, TrainingConfig
from ..data import make_image_dataset
from ..models import tiny_alexnet

__all__ = ["SensitivityResult", "run_layer_sensitivity",
           "print_layer_sensitivity"]

#: the variants compared: which parameter kinds get quantized
VARIANTS: dict[str, tuple[str, ...] | None] = {
    "quantize all": None,
    "quantize conv only": ("conv",),
    "quantize fc only": ("fc",),
    "quantize none (32bit)": (),
}


@dataclass(frozen=True)
class SensitivityResult:
    variant: str
    final_accuracy: float
    best_accuracy: float
    comm_megabytes: float
    history: History


def run_layer_sensitivity(
    scheme: str = "qsgd2",
    epochs: int = 8,
    world_size: int = 4,
    seed: int = 0,
) -> list[SensitivityResult]:
    """Train the AlexNet-class model under each quantization scope."""
    dataset = make_image_dataset(
        num_classes=6, train_samples=384, test_samples=192,
        image_size=16, noise=1.2, seed=3,
    )
    results = []
    for variant, kinds in VARIANTS.items():
        config = TrainingConfig(
            scheme=scheme,
            exchange="mpi",
            world_size=world_size,
            batch_size=32,
            lr=0.01,
            lr_decay=0.93,
            seed=seed,
            quantize_kinds=kinds,
        )
        model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
        trainer = ParallelTrainer(model, config)
        history = trainer.fit(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, epochs=epochs,
        )
        results.append(
            SensitivityResult(
                variant=variant,
                final_accuracy=history.final_test_accuracy,
                best_accuracy=history.best_test_accuracy,
                comm_megabytes=history.total_comm_bytes / 1e6,
                history=history,
            )
        )
    return results


def print_layer_sensitivity(
    scheme: str = "qsgd2", epochs: int = 8
) -> list[SensitivityResult]:
    """Run and print the layer-sensitivity comparison."""
    from .report import print_table

    results = run_layer_sensitivity(scheme=scheme, epochs=epochs)
    print_table(
        ["Variant", "Final acc", "Best acc", "Comm (MB)"],
        [
            [r.variant, r.final_accuracy, r.best_accuracy,
             r.comm_megabytes]
            for r in results
        ],
        title=(
            f"Layer-type sensitivity under {scheme} "
            "(paper Section 5.1, 'Impact of Layer Types')"
        ),
    )
    return results
