"""Layer-type sensitivity study (paper Section 5.1).

The paper observes that convolutional layers are more sensitive to
quantization noise than fully connected layers, by comparing variants
that quantize (1) all layers vs (2) effectively only non-conv layers.
This study runs that comparison directly: the same network, the same
aggressive codec, with quantization restricted to one layer kind at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import History, ParallelTrainer, TrainingConfig
from ..data import make_image_dataset
from ..models import tiny_alexnet
from ..quantization.policy import DEFAULT_KIND_SENSITIVITY

__all__ = ["SensitivityResult", "run_layer_sensitivity",
           "print_layer_sensitivity", "derive_kind_sensitivity"]

#: the variants compared: which parameter kinds get quantized
VARIANTS: dict[str, tuple[str, ...] | None] = {
    "quantize all": None,
    "quantize conv only": ("conv",),
    "quantize fc only": ("fc",),
    "quantize none (32bit)": (),
}


@dataclass(frozen=True)
class SensitivityResult:
    variant: str
    final_accuracy: float
    best_accuracy: float
    comm_megabytes: float
    history: History


def run_layer_sensitivity(
    scheme: str = "qsgd2",
    epochs: int = 8,
    world_size: int = 4,
    seed: int = 0,
) -> list[SensitivityResult]:
    """Train the AlexNet-class model under each quantization scope."""
    dataset = make_image_dataset(
        num_classes=6, train_samples=384, test_samples=192,
        image_size=16, noise=1.2, seed=3,
    )
    results = []
    for variant, kinds in VARIANTS.items():
        config = TrainingConfig(
            scheme=scheme,
            exchange="mpi",
            world_size=world_size,
            batch_size=32,
            lr=0.01,
            lr_decay=0.93,
            seed=seed,
            quantize_kinds=kinds,
        )
        model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
        trainer = ParallelTrainer(model, config)
        history = trainer.fit(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, epochs=epochs,
        )
        results.append(
            SensitivityResult(
                variant=variant,
                final_accuracy=history.final_test_accuracy,
                best_accuracy=history.best_test_accuracy,
                comm_megabytes=history.total_comm_bytes / 1e6,
                history=history,
            )
        )
    return results


#: variant label -> the single parameter kind it isolates
_SINGLE_KIND_VARIANTS = {
    "quantize conv only": "conv",
    "quantize fc only": "fc",
}

#: variant label of the unquantized reference run
_BASELINE_VARIANT = "quantize none (32bit)"


def derive_kind_sensitivity(
    results: list[SensitivityResult],
) -> dict[str, int]:
    """Measured sensitivity ranking for the adaptive bit-width policy.

    Bridges this study's empirical accuracy comparison to the
    :class:`repro.quantization.AdaptiveBitWidthPolicy` sensitivity
    mapping: the accuracy lost when quantizing *only* one layer kind
    (relative to the unquantized baseline) ranks that kind.  Kinds are
    sorted by accuracy drop and assigned tiers 2 (most sensitive,
    largest drop) down to 0; unmeasured kinds keep their
    :data:`~repro.quantization.policy.DEFAULT_KIND_SENSITIVITY` tier.
    Ties (drops within 1e-9) share the higher tier, so a run where
    conv and fc degrade identically never demotes conv below its
    prior.  The ranking is a pure function of the result list — two
    identical studies produce identical mappings.
    """
    by_variant = {r.variant: r for r in results}
    baseline = by_variant.get(_BASELINE_VARIANT)
    mapping = dict(DEFAULT_KIND_SENSITIVITY)
    if baseline is None:
        return mapping
    drops = {}
    for variant, kind in _SINGLE_KIND_VARIANTS.items():
        result = by_variant.get(variant)
        if result is not None:
            drops[kind] = baseline.final_accuracy - result.final_accuracy
    if not drops:
        return mapping
    # tier by drop order: worst-hit kind -> 2, next -> 1, ... floor 0
    ordered = sorted(drops, key=lambda kind: (-drops[kind], kind))
    top_drop = drops[ordered[0]]
    for position, kind in enumerate(ordered):
        if abs(drops[kind] - top_drop) <= 1e-9:
            mapping[kind] = 2
        else:
            mapping[kind] = max(0, 2 - position)
    return mapping


def print_layer_sensitivity(
    scheme: str = "qsgd2", epochs: int = 8
) -> list[SensitivityResult]:
    """Run and print the layer-sensitivity comparison."""
    from .report import print_table

    results = run_layer_sensitivity(scheme=scheme, epochs=epochs)
    print_table(
        ["Variant", "Final acc", "Best acc", "Comm (MB)"],
        [
            [r.variant, r.final_accuracy, r.best_accuracy,
             r.comm_megabytes]
            for r in results
        ],
        title=(
            f"Layer-type sensitivity under {scheme} "
            "(paper Section 5.1, 'Impact of Layer Types')"
        ),
    )
    return results
