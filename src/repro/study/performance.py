"""Figures 6-9: time-per-epoch bars with comm/compute breakdown.

Each paper figure is a row of bar charts (one per network); each bar is
one precision, split into communication time (bottom) and computation
time — which includes compression — on top.  This module regenerates
the numbers behind every bar.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import get_network
from ..simulator import simulate
from .report import print_table

__all__ = ["EpochBar", "epoch_bars", "print_epoch_bars", "FIGURE_SETUPS"]

#: the four performance figures: (figure id, machine, exchange, schemes,
#: GPU counts shown)
FIGURE_SETUPS = {
    "fig6": (
        "p2.16xlarge",
        "mpi",
        ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit*", "1bit"),
        (8,),
    ),
    "fig7": (
        "p2.16xlarge",
        "nccl",
        ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2"),
        (8,),
    ),
    "fig8": (
        "dgx1",
        "mpi",
        ("32bit", "qsgd4", "1bit*", "1bit"),
        (2, 4, 8),
    ),
    "fig9": (
        "dgx1",
        "nccl",
        ("32bit", "qsgd4"),
        (2, 4, 8),
    ),
}

PERFORMANCE_NETWORKS = (
    "AlexNet",
    "VGG19",
    "ResNet152",
    "ResNet50",
    "BN-Inception",
)


@dataclass(frozen=True)
class EpochBar:
    """One bar of Figures 6-9."""

    network: str
    scheme: str
    world_size: int
    epoch_hours: float
    comm_hours: float
    compute_hours: float  # includes compression, as in the paper


def epoch_bars(figure: str) -> list[EpochBar]:
    """All bars of one of Figures 6-9."""
    try:
        machine, exchange, schemes, gpu_counts = FIGURE_SETUPS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(FIGURE_SETUPS)}"
        ) from None
    bars = []
    for network in PERFORMANCE_NETWORKS:
        samples = get_network(network).samples_per_epoch
        for scheme in schemes:
            for world_size in gpu_counts:
                result = simulate(
                    network, machine, scheme, exchange, world_size
                )
                epoch_hours = result.epoch_seconds(samples) / 3600.0
                comm_hours = epoch_hours * result.comm_fraction
                bars.append(
                    EpochBar(
                        network=network,
                        scheme=scheme,
                        world_size=world_size,
                        epoch_hours=epoch_hours,
                        comm_hours=comm_hours,
                        compute_hours=epoch_hours - comm_hours,
                    )
                )
    return bars


def print_epoch_bars(figure: str) -> list[EpochBar]:
    """Print one of Figures 6-9 as a table; return the bars."""
    try:
        machine, exchange, _, _ = FIGURE_SETUPS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(FIGURE_SETUPS)}"
        ) from None
    bars = epoch_bars(figure)
    rows = [
        [
            bar.network,
            bar.scheme,
            bar.world_size,
            bar.epoch_hours,
            bar.comm_hours,
            bar.compute_hours,
        ]
        for bar in bars
    ]
    print_table(
        ["Network", "Precision", "GPUs", "Epoch (h)", "Comm (h)",
         "Compute (h)"],
        rows,
        title=(
            f"{figure}: time per epoch on {machine} over "
            f"{exchange.upper()}"
        ),
    )
    return bars
