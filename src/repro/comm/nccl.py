"""NCCL-style ring allreduce exchange (paper Section 2.4.2).

NCCL's allreduce is bandwidth-optimal on a ring: the buffer is split
into ``K`` slices, a reduce-scatter pass sends ``K - 1`` slices per
rank around the ring, and an allgather pass sends ``K - 1`` more, so
each rank transmits ``2 (K-1) / K`` of the buffer.

NCCL's sum operator only supports full-precision operands, so — exactly
as the paper does (Section 4.4, "NCCL Simulation") — low-precision runs
are *simulated*: each rank's gradient is round-tripped through the
codec locally (preserving the convergence semantics a low-precision
NCCL would have), while the ring carries the number of bytes a
quantized payload would occupy.  Full-precision runs sum exactly.
"""

from __future__ import annotations

import numpy as np

from ..quantization.base import Quantizer
from ..quantization.fullprec import FullPrecision
from ..quantization.workspace import EncodeWorkspace
from .base import ExchangeResult, GradientExchange
from .topology import ring_successor

__all__ = ["NcclRingAllreduce"]

#: NCCL splits buffers into small slices for pipelining (Section 2.4.2);
#: transfers are padded up to whole slices.
DEFAULT_SLICE_BYTES = 8 * 1024


class NcclRingAllreduce(GradientExchange):
    """Ring allreduce with per-rank byte accounting."""

    name = "nccl"

    def __init__(
        self, world_size: int, slice_bytes: int = DEFAULT_SLICE_BYTES
    ):
        super().__init__(world_size)
        if slice_bytes < 1:
            raise ValueError(f"slice_bytes must be >= 1, got {slice_bytes}")
        self.slice_bytes = slice_bytes

    def _record_ring_traffic(self, key: str, payload_bytes: int) -> None:
        """Record reduce-scatter + allgather traffic for one buffer."""
        if self.world_size == 1 or payload_bytes == 0:
            return
        chunk = -(-payload_bytes // self.world_size)  # ceil
        # pad each chunk up to whole pipeline slices
        chunk = -(-chunk // self.slice_bytes) * self.slice_bytes
        steps = 2 * (self.world_size - 1)
        for rank in range(self.world_size):
            succ = ring_successor(rank, self.world_size)
            self.traffic.record(rank, succ, chunk * steps, tag=key)

    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
        workspace: EncodeWorkspace | None = None,
    ) -> ExchangeResult:
        shape = self._check_inputs(tensors)
        inputs = [np.asarray(t, dtype=np.float32) for t in tensors]
        ws = workspace
        tracer = self.tracer

        if ws is None:
            if isinstance(codec, FullPrecision):
                decoded_local = inputs
                payload_bytes = codec.encoded_nbytes(inputs[0].shape)
            else:
                # simulated low-precision NCCL: local round-trip, exact sum
                decoded_local = []
                payload_bytes = 0
                for rank, tensor in enumerate(inputs):
                    with tracer.span("encode", rank):
                        message = codec.encode(tensor, rng)
                    self._count_encode(message.nbytes, key)
                    payload_bytes = message.nbytes
                    with tracer.span("decode", rank):
                        decoded_local.append(codec.decode(message))
                    self._count_decode(message.nbytes, key)
            aggregate = np.zeros(shape, dtype=np.float32)
            for decoded in decoded_local:
                aggregate += decoded
            self._record_ring_traffic(key, payload_bytes)
            return ExchangeResult(
                aggregate=aggregate, decoded_local=list(decoded_local)
            )

        # workspace path: fuse each rank's round-trip decode into the
        # running accumulator in rank order — the exact summation order
        # of the allocating path above, so the sum is bit-identical
        if isinstance(codec, FullPrecision):
            aggregate = ws.zeros("nccl.agg", shape)
            for tensor in inputs:
                aggregate += tensor
            payload_bytes = codec.encoded_nbytes(shape)
            decoded_local: list[np.ndarray] | None = inputs
        elif codec.requires_error_feedback:
            # round-trip images are needed for the residual update
            aggregate = ws.zeros("nccl.agg", shape)
            decoded_local = [
                ws.array(("nccl.dl", rank), shape)
                for rank in range(self.world_size)
            ]
            payload_bytes = 0
            for rank, tensor in enumerate(inputs):
                with tracer.span("encode", rank):
                    message = codec.encode_into(tensor, rng, ws)
                self._count_encode(message.nbytes, key)
                payload_bytes = message.nbytes
                with tracer.span("decode", rank):
                    codec.decode_into(
                        message, decoded_local[rank], workspace=ws
                    )
                    aggregate += decoded_local[rank]
                self._count_decode(message.nbytes, key)
        else:
            decoded_local = None
            payload_bytes = 0
            decoder = codec.sum_decoder(shape, ws)
            for rank, tensor in enumerate(inputs):
                with tracer.span("encode", rank):
                    message = codec.encode_into(tensor, rng, ws)
                self._count_encode(message.nbytes, key)
                payload_bytes = message.nbytes
                with tracer.span("decode", rank):
                    decoder.add(message)
                self._count_decode(message.nbytes, key)
            aggregate = decoder.result()
        self._record_ring_traffic(key, payload_bytes)
        return ExchangeResult(
            aggregate=aggregate, decoded_local=decoded_local
        )
