"""Literal Algorithm 1 exchange: broadcast every message to every peer.

This is the reference semantics of the paper's Algorithm 1 (each rank
broadcasts its encoded gradient M^i to all peers; every peer decodes
all K messages and sums).  It moves ``K (K-1)`` messages per tensor, so
it is never the fastest pattern — the optimized MPI and NCCL exchanges
are verified against it in the integration tests.
"""

from __future__ import annotations

import numpy as np

from ..quantization.base import Quantizer
from .base import ExchangeResult, GradientExchange

__all__ = ["AllToAllBroadcast"]


class AllToAllBroadcast(GradientExchange):
    """Every rank broadcasts its quantized gradient to every peer."""

    name = "alltoall"

    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
    ) -> ExchangeResult:
        shape = self._check_inputs(tensors)
        decoded_local = []
        aggregate = np.zeros(shape, dtype=np.float32)
        for rank, tensor in enumerate(tensors):
            message = codec.encode(np.asarray(tensor, dtype=np.float32), rng)
            for peer in range(self.world_size):
                self.traffic.record(rank, peer, message.nbytes, tag=key)
            decoded = codec.decode(message)
            decoded_local.append(decoded)
            aggregate += decoded
        return ExchangeResult(aggregate=aggregate, decoded_local=decoded_local)
