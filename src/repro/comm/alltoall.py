"""Literal Algorithm 1 exchange: broadcast every message to every peer.

This is the reference semantics of the paper's Algorithm 1 (each rank
broadcasts its encoded gradient M^i to all peers; every peer decodes
all K messages and sums).  It moves ``K (K-1)`` messages per tensor, so
it is never the fastest pattern — the optimized MPI and NCCL exchanges
are verified against it in the integration tests.
"""

from __future__ import annotations

import numpy as np

from ..quantization.base import Quantizer
from ..quantization.workspace import EncodeWorkspace
from .base import ExchangeResult, GradientExchange

__all__ = ["AllToAllBroadcast"]


class AllToAllBroadcast(GradientExchange):
    """Every rank broadcasts its quantized gradient to every peer."""

    name = "alltoall"

    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
        workspace: EncodeWorkspace | None = None,
    ) -> ExchangeResult:
        shape = self._check_inputs(tensors)
        ws = workspace
        need_local = ws is None or codec.requires_error_feedback
        if need_local:
            if ws is None:
                aggregate = np.zeros(shape, dtype=np.float32)
            else:
                aggregate = ws.zeros("a2a.agg", shape)
            decoder = None
        else:
            # fused decode-accumulate: same rank-order summation as the
            # materializing path, hence bit-identical
            decoder = codec.sum_decoder(shape, ws)
        decoded_local: list[np.ndarray] | None = [] if need_local else None
        tracer = self.tracer
        for rank, tensor in enumerate(tensors):
            with tracer.span("encode", rank):
                message = codec.encode_into(
                    np.asarray(tensor, dtype=np.float32), rng, ws
                )
            self._count_encode(message.nbytes, key)
            for peer in range(self.world_size):
                self.traffic.record(rank, peer, message.nbytes, tag=key)
            if need_local:
                with tracer.span("decode", rank):
                    if ws is None:
                        decoded = codec.decode(message)
                    else:
                        decoded = ws.array(("a2a.dl", rank), shape)
                        codec.decode_into(message, decoded, workspace=ws)
                    decoded_local.append(decoded)
                    aggregate += decoded
            else:
                with tracer.span("decode", rank):
                    decoder.add(message)
            self._count_decode(message.nbytes, key)
        if decoder is not None:
            aggregate = decoder.result()
        return ExchangeResult(aggregate=aggregate, decoded_local=decoded_local)
