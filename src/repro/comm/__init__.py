"""Communication substrate: byte-accurate collective gradient exchanges."""

from __future__ import annotations

from .alltoall import AllToAllBroadcast
from .base import ExchangeResult, GradientExchange
from .message import LinkTraffic, TransferRecord
from .mpi import MpiReduceBroadcast
from .nccl import NcclRingAllreduce
from .topology import partition_ranges, ring_order, ring_successor

__all__ = [
    "AllToAllBroadcast",
    "ExchangeResult",
    "GradientExchange",
    "LinkTraffic",
    "TransferRecord",
    "MpiReduceBroadcast",
    "NcclRingAllreduce",
    "partition_ranges",
    "ring_order",
    "ring_successor",
    "make_exchange",
    "EXCHANGE_NAMES",
]

EXCHANGE_NAMES = ("mpi", "nccl", "alltoall")


def make_exchange(name: str, world_size: int, **kwargs) -> GradientExchange:
    """Construct a collective by its paper-style name ("mpi" / "nccl")."""
    if name == "mpi":
        return MpiReduceBroadcast(world_size, **kwargs)
    if name == "nccl":
        return NcclRingAllreduce(world_size, **kwargs)
    if name == "alltoall":
        return AllToAllBroadcast(world_size, **kwargs)
    raise ValueError(
        f"unknown exchange {name!r}; expected one of {EXCHANGE_NAMES}"
    )
