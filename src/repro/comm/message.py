"""Link-level traffic accounting for the in-process cluster.

Every collective in :mod:`repro.comm` records each point-to-point
transfer it performs.  The per-link byte counts are what the
performance simulator consumes, and what tests use to assert the
compression ratios the paper's Figures 6-11 rely on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["LinkTraffic", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One point-to-point transfer: ``nbytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    nbytes: int
    tag: str = ""


@dataclass
class LinkTraffic:
    """Accumulates transfers between ranks.

    Attributes:
        records: every transfer in order, useful for fine-grained
            assertions in tests.
        counters: optional telemetry sink (a
            :class:`repro.telemetry.Counters`); when set, every
            recorded transfer is mirrored into the tracer's wire-byte
            counters at the same point, so traced totals equal traffic
            totals by construction.  ``None`` (the default) keeps the
            untraced hot path to a single attribute check.
    """

    records: list[TransferRecord] = field(default_factory=list)
    counters: object | None = field(default=None, repr=False, compare=False)
    _per_link: dict[tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _sent_by: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _received_by: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, src: int, dst: int, nbytes: int, tag: str = "") -> None:
        """Record a transfer of ``nbytes`` from rank ``src`` to ``dst``."""
        if src == dst:
            return  # local hand-off: nothing crosses a link
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.records.append(TransferRecord(src, dst, nbytes, tag))
        self._per_link[(src, dst)] += nbytes
        self._sent_by[src] += nbytes
        self._received_by[dst] += nbytes
        if self.counters is not None:
            self.counters.count_wire(src, dst, nbytes, tag)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved across all links."""
        return sum(self._per_link.values())

    def link_bytes(self, src: int, dst: int) -> int:
        """Bytes moved on the directed link ``src -> dst``."""
        return self._per_link.get((src, dst), 0)

    def sent_by(self, rank: int) -> int:
        """Total bytes rank ``rank`` put on the wire."""
        return self._sent_by.get(rank, 0)

    def received_by(self, rank: int) -> int:
        """Total bytes delivered to rank ``rank``."""
        return self._received_by.get(rank, 0)

    @property
    def max_link_bytes(self) -> int:
        """Bytes on the busiest directed link (the bandwidth bottleneck)."""
        return max(self._per_link.values(), default=0)

    def reset(self) -> None:
        """Clear all accumulated records."""
        self.records.clear()
        self._per_link.clear()
        self._sent_by.clear()
        self._received_by.clear()
