"""MPI reduce-and-broadcast gradient exchange (paper Section 2.4.1).

The gradient matrix is range-partitioned over its columns (CNTK sends
each gradient matrix separately and assigns each processor a contiguous
range).  Each rank quantizes every range and sends it to the range's
owner; the owner decodes and sums all contributions, optionally
*re-quantizes* the aggregate (CNTK's 1bitSGD does, keeping a second
error-feedback residual on the aggregator), and broadcasts it back.

Because quantization happens per range, the wire carries quantized
bytes in both the reduce and the broadcast phase — this is the data
path whose cost model produces the paper's Figures 6, 8, 10.
"""

from __future__ import annotations

import numpy as np

from ..quantization.base import ErrorFeedback, Quantizer
from ..quantization.fullprec import FullPrecision
from ..quantization.workspace import EncodeWorkspace
from .base import ExchangeResult, GradientExchange
from .topology import partition_ranges

__all__ = ["MpiReduceBroadcast"]


class MpiReduceBroadcast(GradientExchange):
    """Reduce-and-broadcast over host-staged MPI, quantization-aware."""

    name = "mpi"

    def __init__(self, world_size: int, requantize_broadcast: bool = True):
        super().__init__(world_size)
        #: whether aggregated ranges are re-quantized before broadcast
        #: (CNTK behaviour for biased schemes); unbiased schemes and
        #: full precision broadcast the exact aggregate.
        self.requantize_broadcast = requantize_broadcast
        self._fullprec = FullPrecision()
        # aggregator-side error feedback, one residual per (key, owner)
        self._broadcast_feedback: dict[int, ErrorFeedback] = {}
        # residuals restored from a checkpoint before the codec is
        # known; adopted lazily the first time each owner's feedback
        # wrapper is built
        self._restored_residuals: dict[int, dict[str, np.ndarray]] = {}

    def _broadcast_codec(self, codec: Quantizer, owner: int):
        """Encode/decode pair used for the broadcast phase."""
        if not self.requantize_broadcast or isinstance(codec, FullPrecision):
            return None
        if codec.requires_error_feedback:
            feedback = self._broadcast_feedback.get(owner)
            if feedback is None:
                feedback = ErrorFeedback(codec)
                feedback._residuals.update(
                    self._restored_residuals.pop(owner, {})
                )
                self._broadcast_feedback[owner] = feedback
            return feedback
        return codec

    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
        workspace: EncodeWorkspace | None = None,
    ) -> ExchangeResult:
        shape = self._check_inputs(tensors)
        rows = shape[0] if shape else 1
        matrices = [
            np.asarray(t, dtype=np.float32).reshape(rows, -1) for t in tensors
        ]
        n_cols = matrices[0].shape[1]
        ranges = partition_ranges(n_cols, self.world_size)
        ws = workspace
        # round-trip images are only materialized when the trainer
        # needs them for error feedback (or on the allocating path)
        need_local = ws is None or codec.requires_error_feedback
        if ws is None:
            decoded_local = [np.empty_like(m) for m in matrices]
            aggregate = np.empty_like(matrices[0])
        else:
            if need_local:
                decoded_local = [
                    ws.array(("mpi.dl", rank), matrices[0].shape)
                    for rank in range(self.world_size)
                ]
            else:
                decoded_local = None
            aggregate = ws.array("mpi.agg", matrices[0].shape)

        tracer = self.tracer
        for owner, (lo, hi) in enumerate(ranges):
            if lo == hi:
                continue
            # reduce phase: every rank ships its quantized range to the
            # owner, which folds each decode straight into the running
            # sum — same per-rank summation order as materialize-then-
            # add, so the aggregate is bit-identical
            if need_local:
                if ws is None:
                    owner_sum = np.zeros((rows, hi - lo), dtype=np.float32)
                else:
                    owner_sum = ws.zeros("mpi.osum", (rows, hi - lo))
                decoder = None
            else:
                decoder = codec.sum_decoder((rows, hi - lo), ws)
            for rank, matrix in enumerate(matrices):
                with tracer.span("encode", rank):
                    message = codec.encode_into(matrix[:, lo:hi], rng, ws)
                self._count_encode(message.nbytes, key)
                self.traffic.record(rank, owner, message.nbytes, tag=key)
                if need_local:
                    part = decoded_local[rank][:, lo:hi]
                    with tracer.span("decode", rank):
                        codec.decode_into(message, part, workspace=ws)
                        owner_sum += part
                else:
                    with tracer.span("decode", rank):
                        decoder.add(message)
                self._count_decode(message.nbytes, key)
            if decoder is not None:
                owner_sum = decoder.result()

            # broadcast phase: owner ships the aggregated range back
            broadcast_codec = self._broadcast_codec(codec, owner)
            target = aggregate[:, lo:hi]
            if broadcast_codec is None:
                target[...] = owner_sum
                nbytes = self._fullprec.encoded_nbytes(owner_sum.shape)
            elif isinstance(broadcast_codec, ErrorFeedback):
                with tracer.span("encode", owner):
                    message = broadcast_codec.encode(
                        f"{key}/range{owner}", owner_sum, rng, workspace=ws
                    )
                self._count_encode(message.nbytes, key)
                with tracer.span("decode", owner):
                    broadcast_codec.quantizer.decode_into(
                        message, target, workspace=ws
                    )
                self._count_decode(message.nbytes, key)
                nbytes = message.nbytes
            else:
                with tracer.span("encode", owner):
                    message = broadcast_codec.encode_into(owner_sum, rng, ws)
                self._count_encode(message.nbytes, key)
                with tracer.span("decode", owner):
                    broadcast_codec.decode_into(message, target, workspace=ws)
                self._count_decode(message.nbytes, key)
                nbytes = message.nbytes
            for rank in range(self.world_size):
                self.traffic.record(owner, rank, nbytes, tag=key)

        return ExchangeResult(
            aggregate=aggregate.reshape(shape),
            decoded_local=(
                [d.reshape(shape) for d in decoded_local]
                if decoded_local is not None
                else None
            ),
        )

    def state_dict(self) -> dict[str, np.ndarray]:
        """Aggregator-side broadcast residuals as ``"owner|stream"`` keys."""
        state = {
            f"{owner}|{stream}": residual.copy()
            for owner, feedback in self._broadcast_feedback.items()
            for stream, residual in feedback._residuals.items()
        }
        # restored-but-not-yet-adopted residuals round-trip unchanged
        for owner, residuals in self._restored_residuals.items():
            for stream, residual in residuals.items():
                state[f"{owner}|{stream}"] = residual.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._broadcast_feedback.clear()
        self._restored_residuals.clear()
        for key, residual in state.items():
            owner_text, _, stream = key.partition("|")
            owner = int(owner_text)
            self._restored_residuals.setdefault(owner, {})[stream] = (
                np.array(residual, dtype=np.float32)
            )

    def reset(self) -> None:
        super().reset()
        self._broadcast_feedback.clear()
        self._restored_residuals.clear()
