"""MPI reduce-and-broadcast gradient exchange (paper Section 2.4.1).

The gradient matrix is range-partitioned over its columns (CNTK sends
each gradient matrix separately and assigns each processor a contiguous
range).  Each rank quantizes every range and sends it to the range's
owner; the owner decodes and sums all contributions, optionally
*re-quantizes* the aggregate (CNTK's 1bitSGD does, keeping a second
error-feedback residual on the aggregator), and broadcasts it back.

Because quantization happens per range, the wire carries quantized
bytes in both the reduce and the broadcast phase — this is the data
path whose cost model produces the paper's Figures 6, 8, 10.
"""

from __future__ import annotations

import numpy as np

from ..quantization.base import ErrorFeedback, Quantizer
from ..quantization.fullprec import FullPrecision
from .base import ExchangeResult, GradientExchange
from .topology import partition_ranges

__all__ = ["MpiReduceBroadcast"]


class MpiReduceBroadcast(GradientExchange):
    """Reduce-and-broadcast over host-staged MPI, quantization-aware."""

    name = "mpi"

    def __init__(self, world_size: int, requantize_broadcast: bool = True):
        super().__init__(world_size)
        #: whether aggregated ranges are re-quantized before broadcast
        #: (CNTK behaviour for biased schemes); unbiased schemes and
        #: full precision broadcast the exact aggregate.
        self.requantize_broadcast = requantize_broadcast
        self._fullprec = FullPrecision()
        # aggregator-side error feedback, one residual per (key, owner)
        self._broadcast_feedback: dict[int, ErrorFeedback] = {}

    def _broadcast_codec(self, codec: Quantizer, owner: int):
        """Encode/decode pair used for the broadcast phase."""
        if not self.requantize_broadcast or isinstance(codec, FullPrecision):
            return None
        if codec.requires_error_feedback:
            feedback = self._broadcast_feedback.setdefault(
                owner, ErrorFeedback(codec)
            )
            return feedback
        return codec

    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
    ) -> ExchangeResult:
        shape = self._check_inputs(tensors)
        rows = shape[0] if shape else 1
        matrices = [
            np.asarray(t, dtype=np.float32).reshape(rows, -1) for t in tensors
        ]
        n_cols = matrices[0].shape[1]
        ranges = partition_ranges(n_cols, self.world_size)

        decoded_local = [np.empty_like(m) for m in matrices]
        aggregate = np.empty_like(matrices[0])

        for owner, (lo, hi) in enumerate(ranges):
            if lo == hi:
                continue
            # reduce phase: every rank ships its quantized range to the owner
            owner_sum = np.zeros((rows, hi - lo), dtype=np.float32)
            for rank, matrix in enumerate(matrices):
                message = codec.encode(matrix[:, lo:hi], rng)
                self.traffic.record(rank, owner, message.nbytes, tag=key)
                decoded = codec.decode(message)
                decoded_local[rank][:, lo:hi] = decoded
                owner_sum += decoded

            # broadcast phase: owner ships the aggregated range back
            broadcast_codec = self._broadcast_codec(codec, owner)
            if broadcast_codec is None:
                outgoing = owner_sum
                nbytes = self._fullprec.encode(owner_sum).nbytes
            elif isinstance(broadcast_codec, ErrorFeedback):
                message = broadcast_codec.encode(
                    f"{key}/range{owner}", owner_sum, rng
                )
                outgoing = broadcast_codec.decode(message)
                nbytes = message.nbytes
            else:
                message = broadcast_codec.encode(owner_sum, rng)
                outgoing = broadcast_codec.decode(message)
                nbytes = message.nbytes
            for rank in range(self.world_size):
                self.traffic.record(owner, rank, nbytes, tag=key)
            aggregate[:, lo:hi] = outgoing

        return ExchangeResult(
            aggregate=aggregate.reshape(shape),
            decoded_local=[d.reshape(shape) for d in decoded_local],
        )

    def reset(self) -> None:
        super().reset()
        self._broadcast_feedback.clear()
