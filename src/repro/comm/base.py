"""Collective-exchange interface shared by the MPI and NCCL paths.

A :class:`GradientExchange` implements line 4-8 of the paper's
Algorithm 1 for one gradient tensor: every rank contributes its local
gradient, and every rank receives the identical aggregated (summed)
gradient.  Implementations differ in data movement (and therefore in
the bytes recorded on each link) and in where quantization is applied.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..quantization.base import Quantizer
from ..quantization.workspace import EncodeWorkspace
from ..telemetry.tracer import NULL_TRACER

from .message import LinkTraffic

__all__ = ["ExchangeResult", "GradientExchange"]


@dataclass
class ExchangeResult:
    """Outcome of one collective gradient exchange.

    Attributes:
        aggregate: the summed gradient, identical at every rank (the
            synchronous-SGD invariant; tests assert it).  When the
            exchange ran with a workspace, this array aliases an arena
            buffer and is valid until the next exchange on the same
            workspace — consume (or copy) it before then.
        decoded_local: per rank, what that rank's own contribution
            looked like after its quantization round-trip.  The trainer
            uses this to update error-feedback residuals.  ``None``
            when the exchange ran with a workspace and the codec does
            not require error feedback: the round-trip images are then
            folded straight into the aggregate (fused decode-
            accumulate) and never materialized.
    """

    aggregate: np.ndarray
    decoded_local: list[np.ndarray] | None


class GradientExchange(abc.ABC):
    """One collective pattern (MPI reduce-and-broadcast, NCCL ring...).

    Instances are stateful only where the real system is stateful
    (e.g. the MPI path's aggregator-side error feedback); all traffic
    is recorded into :attr:`traffic`.
    """

    name: str = "exchange"

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.traffic = LinkTraffic()
        # telemetry handle, installed by SynchronousStep when tracing
        # is on; the default null tracer makes every span a shared
        # no-op, so untraced exchanges pay only the call sites
        self.tracer = NULL_TRACER

    def _count_encode(self, nbytes: int, key: str = "") -> None:
        """Mirror one codec encode into the tracer's typed counters.

        A non-empty ``key`` (the gradient stream / parameter name)
        attributes the call to that layer's measured encode-cost
        profile, which the adaptive bit-width policy consumes.
        """
        sink = self.tracer.counter_sink
        if sink is not None:
            sink.count_encode(nbytes, key or None)

    def _count_decode(self, nbytes: int, key: str = "") -> None:
        """Mirror one codec decode into the tracer's typed counters."""
        sink = self.tracer.counter_sink
        if sink is not None:
            sink.count_decode(nbytes, key or None)

    @abc.abstractmethod
    def exchange(
        self,
        key: str,
        tensors: list[np.ndarray],
        codec: Quantizer,
        rng: np.random.Generator,
        workspace: EncodeWorkspace | None = None,
    ) -> ExchangeResult:
        """Aggregate one gradient tensor across all ranks.

        Args:
            key: stable stream identifier (parameter name); collectives
                with aggregator-side state key it by this.
            tensors: one gradient per rank, all of identical shape.
            codec: the quantizer applied on the wire.
            rng: randomness source for stochastic quantizers.
            workspace: scratch arena for the zero-allocation hot path.
                With a workspace, encode/decode run through the codec's
                ``*_into`` kernels and per-rank decodes are fused into
                a single running accumulator (``decode_into(...,
                accumulate=True)``), preserving the exact summation
                order of the allocating path — results are
                bit-identical either way, and the recorded wire bytes
                never change.  Not thread-safe: one workspace per
                exchanging thread.
        """

    def _check_inputs(self, tensors: list[np.ndarray]) -> tuple[int, ...]:
        if len(tensors) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank tensors, got {len(tensors)}"
            )
        shape = tensors[0].shape
        for rank, tensor in enumerate(tensors):
            if tensor.shape != shape:
                raise ValueError(
                    f"rank {rank} tensor shape {tensor.shape} != {shape}"
                )
        return shape

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of any aggregator-side numeric state (empty if stateless).

        Checkpoints persist this, and the engines' retry snapshots
        restore it, so exchanges with server-side error feedback (the
        MPI path's re-quantized broadcast) survive both.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{self.name} exchange is stateless but received "
                f"{len(state)} state entries"
            )

    def reset(self) -> None:
        """Clear traffic records (and any aggregator state)."""
        self.traffic.reset()
