"""Topology helpers: contiguous range partitioning and ring orders.

The MPI reduce-and-broadcast pattern assigns each rank a contiguous
range of the flattened model (paper Section 2.4.1); NCCL builds a
communication ring (Section 2.4.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_ranges", "ring_order", "ring_successor"]


def partition_ranges(n: int, world_size: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ``world_size`` contiguous half-open ranges.

    Sizes differ by at most one element; earlier ranks receive the
    larger ranges, matching MPI block distribution.  Ranges may be
    empty when ``n < world_size``.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, world_size)
    ranges = []
    start = 0
    for rank in range(world_size):
        size = base + (1 if rank < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def ring_order(world_size: int) -> list[int]:
    """Rank order around the NCCL-style ring (identity order here).

    Real NCCL derives the ring from the PCIe/NVLink topology; for the
    in-process cluster the identity ring is sufficient, and the
    performance simulator applies topology-aware link speeds on top.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    return list(range(world_size))


def ring_successor(rank: int, world_size: int) -> int:
    """The next rank around the ring."""
    return (rank + 1) % world_size


def concat_ranges(parts: list[np.ndarray]) -> np.ndarray:
    """Reassemble range-partitioned pieces into one flat vector."""
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.float32)
