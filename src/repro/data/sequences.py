"""Synthetic sequence-classification dataset (stands in for AN4 speech).

Each class is a characteristic temporal pattern — a mixture of
sinusoids at class-specific frequencies projected through a random
emission matrix, mimicking the spectral structure of speech frames.
The recurrent model must integrate over time to classify, exercising
the same gradient pathways as the paper's 3-layer AN4 LSTM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SequenceDataset", "make_sequence_dataset"]


@dataclass
class SequenceDataset:
    """Train/test split of a synthetic sequence problem."""

    train_x: np.ndarray  # (N, T, D)
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def seq_shape(self) -> tuple[int, int]:
        return self.train_x.shape[1], self.train_x.shape[2]

    def __len__(self) -> int:
        return self.train_x.shape[0]


def make_sequence_dataset(
    num_classes: int = 6,
    train_samples: int = 384,
    test_samples: int = 192,
    seq_len: int = 24,
    features: int = 20,
    noise: float = 0.5,
    seed: int = 0,
) -> SequenceDataset:
    """Generate a synthetic sequence-classification dataset."""
    rng = np.random.default_rng(seed)
    emission = rng.normal(size=(2, features)).astype(np.float32)
    freqs = 0.3 + 0.25 * np.arange(num_classes)
    t = np.arange(seq_len, dtype=np.float32)

    def draw(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        phase = rng.uniform(0, 2 * np.pi, size=count)
        # two latent channels per sample: a sinusoid at the class
        # frequency and its quadrature component
        angle = freqs[labels][:, None] * t[None, :] + phase[:, None]
        latent = np.stack([np.sin(angle), np.cos(angle)], axis=-1)
        samples = latent @ emission  # (N, T, D)
        samples = samples + noise * rng.normal(size=samples.shape)
        return samples.astype(np.float32), labels.astype(np.int64)

    train_x, train_y = draw(train_samples)
    test_x, test_y = draw(test_samples)
    return SequenceDataset(train_x, train_y, test_x, test_y, num_classes)
