"""Synthetic image-classification datasets (stand in for ImageNet/CIFAR).

Each class is defined by a smooth spatial prototype; samples are noisy
draws around their class prototype.  Class prototypes can be made
*correlated* in pairs, which forces the classifier to rely on small
differences — exactly the regime where aggressive gradient quantization
(2-bit QSGD) measurably hurts accuracy, reproducing the paper's
accuracy findings at laptop scale.

The module also records the statistics table of the paper's Figure 1
for the real datasets being substituted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImageDataset", "make_image_dataset", "DATASET_STATS"]

#: the paper's Figure 1, kept as reference data for reports and tests
DATASET_STATS = {
    "ImageNet": {
        "train_samples": 1_281_167,
        "validation_samples": 50_000,
        "size": "145GB",
        "classes": 1000,
        "task": "Image",
    },
    "CIFAR-10": {
        "train_samples": 50_000,
        "validation_samples": 10_000,
        "size": "1GB",
        "classes": 10,
        "task": "Image",
    },
    "AN4": {
        "train_samples": 948,
        "validation_samples": 130,
        "size": "64MB",
        "classes": None,
        "task": "Speech",
    },
}


@dataclass
class ImageDataset:
    """Train/test split of a synthetic classification problem."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, ...]:
        return self.train_x.shape[1:]

    def __len__(self) -> int:
        return self.train_x.shape[0]


def _smooth_field(
    rng: np.random.Generator, channels: int, size: int, grid: int = 4
) -> np.ndarray:
    """A smooth random field: low-res noise upsampled to ``size``."""
    coarse = rng.normal(size=(channels, grid, grid))
    reps = -(-size // grid)
    field = np.kron(coarse, np.ones((reps, reps)))[:, :size, :size]
    return field.astype(np.float32)


def make_image_dataset(
    num_classes: int = 10,
    train_samples: int = 512,
    test_samples: int = 256,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 1.0,
    class_correlation: float = 0.8,
    seed: int = 0,
) -> ImageDataset:
    """Generate a synthetic image-classification dataset.

    Args:
        noise: standard deviation of per-pixel Gaussian noise; higher
            is harder.
        class_correlation: in [0, 1); prototypes of class pairs
            ``(2k, 2k+1)`` share this fraction of their energy, so
            discriminating within a pair needs fine-grained gradients.
        seed: generator seed; the same seed yields the same dataset.
    """
    if not 0.0 <= class_correlation < 1.0:
        raise ValueError(
            f"class_correlation must be in [0, 1), got {class_correlation}"
        )
    rng = np.random.default_rng(seed)
    prototypes = []
    shared = None
    for label in range(num_classes):
        if label % 2 == 0:
            shared = _smooth_field(rng, channels, image_size)
        unique = _smooth_field(rng, channels, image_size)
        proto = (
            class_correlation * shared
            + (1.0 - class_correlation) * unique
        )
        prototypes.append(proto)
    prototypes = np.stack(prototypes)

    def draw(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        base = prototypes[labels]
        samples = base + noise * rng.normal(size=base.shape)
        return samples.astype(np.float32), labels.astype(np.int64)

    train_x, train_y = draw(train_samples)
    test_x, test_y = draw(test_samples)
    return ImageDataset(train_x, train_y, test_x, test_y, num_classes)
