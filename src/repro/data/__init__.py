"""Synthetic datasets standing in for ImageNet, CIFAR-10, and AN4."""

from .loader import iterate_minibatches, split_among_ranks
from .sequences import SequenceDataset, make_sequence_dataset
from .synthetic import DATASET_STATS, ImageDataset, make_image_dataset

__all__ = [
    "DATASET_STATS",
    "ImageDataset",
    "SequenceDataset",
    "make_image_dataset",
    "make_sequence_dataset",
    "iterate_minibatches",
    "split_among_ranks",
]
