"""Minibatch iteration and data-parallel sharding."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["iterate_minibatches", "split_among_ranks"]


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (inputs, labels) minibatches, shuffling when ``rng`` given."""
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"inputs ({x.shape[0]}) and labels ({y.shape[0]}) disagree"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = x.shape[0]
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.size < batch_size:
            return
        yield x[idx], y[idx]


def split_among_ranks(
    x: np.ndarray, y: np.ndarray, world_size: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split one global minibatch into per-rank shards.

    Shard sizes differ by at most one sample; every rank receives at
    least the batch's leftovers in round-robin order, matching how a
    data-parallel reader distributes a global batch.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    return [
        (x[rank::world_size], y[rank::world_size])
        for rank in range(world_size)
    ]
