"""ASCII rendering of study results (curves and stacked bars).

The original paper ships matplotlib figures; this repository has no
plotting dependency, so examples and the CLI render the same artefacts
as plain text: line charts for accuracy/scalability curves, stacked
horizontal bars for the epoch-time breakdowns.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "phase_bars", "stacked_bars"]


def line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render named series as an ASCII line chart.

    All series share the x-axis by index.  NaN points are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    points = [
        (name, [v for v in values if not math.isnan(v)])
        for name, values in series.items()
    ]
    flat = [v for _, values in points for v in values]
    if not flat:
        raise ValueError("all series are empty")
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0
    longest = max(len(values) for _, values in series.items())

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (name, _) in enumerate(points):
        values = list(series[name])
        marker = markers[index % len(markers)]
        for x_index, value in enumerate(values):
            if math.isnan(value):
                continue
            col = (
                int(x_index / max(longest - 1, 1) * (width - 1))
                if longest > 1
                else 0
            )
            row = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if y_label:
        lines.append(f"{y_label}  [{lo:.3g} .. {hi:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    for index, (name, _) in enumerate(points):
        lines.append(f"  {markers[index % len(markers)]} = {name}")
    return "\n".join(lines)


def stacked_bars(
    bars: Mapping[str, tuple[float, float]],
    width: int = 50,
    labels: tuple[str, str] = ("comm", "compute"),
) -> str:
    """Render (bottom, top) stacked horizontal bars, paper-figure style.

    Args:
        bars: name -> (bottom segment, top segment) values.
        labels: legend names for the two segments.
    """
    if not bars:
        raise ValueError("need at least one bar")
    totals = {name: bottom + top for name, (bottom, top) in bars.items()}
    peak = max(totals.values())
    if peak <= 0:
        raise ValueError("bar totals must be positive")
    name_width = max(len(name) for name in bars)
    lines = []
    for name, (bottom, top) in bars.items():
        bottom_cells = int(round(bottom / peak * width))
        top_cells = int(round(top / peak * width))
        lines.append(
            f"{name.rjust(name_width)} |"
            + "#" * bottom_cells
            + "." * top_cells
            + f"  {totals[name]:.3g}"
        )
    lines.append(f"{' ' * name_width}  # = {labels[0]}, . = {labels[1]}")
    return "\n".join(lines)


#: fill characters for :func:`phase_bars`, one per segment in order
_PHASE_FILLS = "#=~.:+o*"


def phase_bars(
    bars: Mapping[str, Mapping[str, float]],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Render per-scheme phase breakdowns as multi-segment stacked bars.

    This is the compute-vs-communication figure for *measured* (traced)
    runs: each bar is one scheme/cell, each segment one traced phase
    (e.g. from :meth:`repro.core.History.phase_totals` or a
    :class:`repro.telemetry.PhaseBreakdown`'s phase seconds).  Segment
    order follows the first bar's key order; phases absent from a bar
    contribute zero width.

    Args:
        bars: bar name -> ordered mapping of segment name -> value.
        width: cell count of the longest bar.
        unit: printed after each bar's total.
    """
    if not bars:
        raise ValueError("need at least one bar")
    segments: list[str] = []
    for phases in bars.values():
        for phase in phases:
            if phase not in segments:
                segments.append(phase)
    if len(segments) > len(_PHASE_FILLS):
        raise ValueError(
            f"at most {len(_PHASE_FILLS)} distinct phases, got "
            f"{len(segments)}"
        )
    totals = {
        name: sum(phases.get(s, 0.0) for s in segments)
        for name, phases in bars.items()
    }
    peak = max(totals.values())
    if peak <= 0:
        raise ValueError("bar totals must be positive")
    name_width = max(len(name) for name in bars)
    fill_of = dict(zip(segments, _PHASE_FILLS))
    lines = []
    for name, phases in bars.items():
        bar = "".join(
            fill_of[segment]
            * int(round(phases.get(segment, 0.0) / peak * width))
            for segment in segments
        )
        lines.append(
            f"{name.rjust(name_width)} |{bar}  {totals[name]:.3g}{unit}"
        )
    legend = ", ".join(
        f"{fill_of[segment]} = {segment}" for segment in segments
    )
    lines.append(f"{' ' * name_width}  {legend}")
    return "\n".join(lines)
