"""ASCII rendering of study results (curves and stacked bars).

The original paper ships matplotlib figures; this repository has no
plotting dependency, so examples and the CLI render the same artefacts
as plain text: line charts for accuracy/scalability curves, stacked
horizontal bars for the epoch-time breakdowns.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "stacked_bars"]


def line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render named series as an ASCII line chart.

    All series share the x-axis by index.  NaN points are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    points = [
        (name, [v for v in values if not math.isnan(v)])
        for name, values in series.items()
    ]
    flat = [v for _, values in points for v in values]
    if not flat:
        raise ValueError("all series are empty")
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0
    longest = max(len(values) for _, values in series.items())

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (name, _) in enumerate(points):
        values = list(series[name])
        marker = markers[index % len(markers)]
        for x_index, value in enumerate(values):
            if math.isnan(value):
                continue
            col = (
                int(x_index / max(longest - 1, 1) * (width - 1))
                if longest > 1
                else 0
            )
            row = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if y_label:
        lines.append(f"{y_label}  [{lo:.3g} .. {hi:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    for index, (name, _) in enumerate(points):
        lines.append(f"  {markers[index % len(markers)]} = {name}")
    return "\n".join(lines)


def stacked_bars(
    bars: Mapping[str, tuple[float, float]],
    width: int = 50,
    labels: tuple[str, str] = ("comm", "compute"),
) -> str:
    """Render (bottom, top) stacked horizontal bars, paper-figure style.

    Args:
        bars: name -> (bottom segment, top segment) values.
        labels: legend names for the two segments.
    """
    if not bars:
        raise ValueError("need at least one bar")
    totals = {name: bottom + top for name, (bottom, top) in bars.items()}
    peak = max(totals.values())
    if peak <= 0:
        raise ValueError("bar totals must be positive")
    name_width = max(len(name) for name in bars)
    lines = []
    for name, (bottom, top) in bars.items():
        bottom_cells = int(round(bottom / peak * width))
        top_cells = int(round(top / peak * width))
        lines.append(
            f"{name.rjust(name_width)} |"
            + "#" * bottom_cells
            + "." * top_cells
            + f"  {totals[name]:.3g}"
        )
    lines.append(f"{' ' * name_width}  # = {labels[0]}, . = {labels[1]}")
    return "\n".join(lines)
