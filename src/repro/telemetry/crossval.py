"""Cross-validate measured phase breakdowns against the simulator.

The paper validates its analytic cost model against instrumented runs
(as Shi et al. do for their DAG model of S-SGD); this module does the
same for this repository: a measured :class:`PhaseBreakdown` from the
live tracer is compared, phase by phase, against the calibrated
performance simulator's prediction for the *same scheme, exchange and
world size* on a paper-scale network/machine cell.

Because the live runs train tiny synthetic models while the simulator
costs paper-scale networks on EC2/DGX-1 hardware, absolute seconds are
not comparable — phase *ratios* are, and that is what the report
shows: the measured compute : quantize : communicate split next to the
simulated one, plus the simulator's predicted exchange makespan (the
discrete-event :func:`~repro.simulator.timeline.pipeline_timeline` on
the MPI path, serialized quantize-then-allreduce on the NCCL path,
exactly as :mod:`repro.simulator.epoch` composes them).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.costmodel import cached_cost_model
from ..simulator.epoch import SimulationResult, simulate
from ..simulator.machine import get_machine
from ..simulator.timeline import pipeline_timeline
from .export import PhaseBreakdown

__all__ = [
    "DEFAULT_FRACTION_GAP_TOLERANCE",
    "RatioRow",
    "CrossValidation",
    "cross_validate",
]

#: default pass/fail gate on phase-share agreement: the largest
#: |measured - simulated| phase fraction a run may show and still count
#: as cross-validated.  Live runs train tiny synthetic models while the
#: simulator costs paper-scale cells, so shares shift with model size;
#: 0.35 is wide enough for that scale gap yet tight enough to catch a
#: model that mis-attributes a phase entirely (gap ~ 1.0).
DEFAULT_FRACTION_GAP_TOLERANCE = 0.35

#: how measured span names map onto the simulator's three cost terms
_MEASURED_GROUPS = {
    "compute": ("compute",),
    "quantize": ("encode", "decode"),
    "communicate": ("transfer", "barrier"),
}


@dataclass(frozen=True)
class RatioRow:
    """One phase of the measured-vs-simulated comparison."""

    phase: str
    measured_seconds: float
    measured_fraction: float
    simulated_seconds: float
    simulated_fraction: float

    @property
    def fraction_gap(self) -> float:
        """Measured minus simulated share of the step."""
        return self.measured_fraction - self.simulated_fraction


@dataclass(frozen=True)
class CrossValidation:
    """Measured vs simulated phase ratios for one study cell."""

    network: str
    machine: str
    scheme: str
    exchange: str
    world_size: int
    breakdown: PhaseBreakdown
    simulated: SimulationResult
    #: simulator's predicted exchange makespan (seconds): the
    #: discrete-event pipeline on MPI, quantize + allreduce on NCCL
    predicted_makespan_seconds: float
    rows: tuple[RatioRow, ...]

    @property
    def max_fraction_gap(self) -> float:
        """Largest |measured - simulated| phase share across rows."""
        return max(
            (abs(row.fraction_gap) for row in self.rows), default=0.0
        )

    def passes(
        self, tolerance: float = DEFAULT_FRACTION_GAP_TOLERANCE
    ) -> bool:
        """Whether every phase share agrees within ``tolerance``."""
        return self.max_fraction_gap <= tolerance

    def report(self) -> str:
        """Side-by-side ratio table, one line per phase."""
        lines = [
            f"cross-validation [{self.breakdown.label}] vs simulated "
            f"{self.network} on {self.machine} "
            f"({self.scheme}/{self.exchange}/K={self.world_size})",
            f"  {'phase':12s} {'measured':>18s} {'simulated':>18s}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.phase:12s} "
                f"{row.measured_seconds:9.4f}s {row.measured_fraction:6.1%} "
                f"{row.simulated_seconds:9.4f}s {row.simulated_fraction:6.1%}"
            )
        lines.append(
            f"  predicted exchange makespan: "
            f"{self.predicted_makespan_seconds:.4f} s/iteration"
        )
        lines.append(
            f"  max phase-share gap: {self.max_fraction_gap:.1%} "
            f"(tolerance {DEFAULT_FRACTION_GAP_TOLERANCE:.0%})"
        )
        return "\n".join(lines)


def cross_validate(
    breakdown: PhaseBreakdown,
    *,
    scheme: str,
    exchange: str,
    world_size: int,
    network: str = "AlexNet",
    machine: str = "p2.8xlarge",
) -> CrossValidation:
    """Compare a measured breakdown to the simulator's prediction.

    Args:
        breakdown: phase seconds measured by the live tracer.
        scheme / exchange / world_size: the cell the breakdown was
            measured on (the simulator is run on the same cell).
        network / machine: paper-scale inventory entries the simulator
            costs; the comparison is by phase *ratio*, so the live
            run's model need not (and cannot) match their size.
    """
    sim = simulate(network, machine, scheme, exchange, world_size)

    measured = {
        group: sum(
            breakdown.phase_seconds.get(name, 0.0) for name in names
        )
        for group, names in _MEASURED_GROUPS.items()
    }
    simulated = {
        "compute": sim.compute_seconds,
        "quantize": sim.quantize_seconds,
        "communicate": sim.comm_seconds,
    }
    measured_total = sum(measured.values())
    simulated_total = sum(simulated.values())
    rows = tuple(
        RatioRow(
            phase=group,
            measured_seconds=measured[group],
            measured_fraction=(
                measured[group] / measured_total if measured_total else 0.0
            ),
            simulated_seconds=simulated[group],
            simulated_fraction=(
                simulated[group] / simulated_total
                if simulated_total
                else 0.0
            ),
        )
        for group in _MEASURED_GROUPS
    )

    if exchange == "mpi" and world_size > 1:
        timeline = pipeline_timeline(
            cached_cost_model(network, scheme, world_size),
            get_machine(machine),
            world_size,
        )
        makespan = timeline.makespan
    else:
        # simulated NCCL quantizes, then allreduces (paper Section 4.4)
        makespan = sim.quantize_seconds + sim.comm_seconds

    return CrossValidation(
        network=network,
        machine=machine,
        scheme=scheme,
        exchange=exchange,
        world_size=world_size,
        breakdown=breakdown,
        simulated=sim,
        predicted_makespan_seconds=makespan,
        rows=rows,
    )
