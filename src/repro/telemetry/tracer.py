"""Measured per-rank tracing for the live training path.

The simulator in :mod:`repro.simulator` *predicts* how one synchronous
step decomposes into compute / encode / transfer / decode / barrier
time; this module *measures* that decomposition on the actual
:class:`~repro.core.algorithm.SynchronousStep` / engine / exchange
code, which is what the paper's stacked-bar epoch-time figures show.

Two tracer implementations share one duck-typed interface:

* :class:`Tracer` records every span as a timestamped
  :class:`TraceEvent` on a per-track timeline (one track per rank,
  plus a coordinator track) and accumulates typed :class:`Counters`.
  Collection is thread-safe so the threaded engine's rank workers can
  record concurrently.
* :class:`NullTracer` (the default, shared :data:`NULL_TRACER`
  singleton) is a no-op: ``span()`` returns one reusable null context
  manager and the counter sink is ``None``, so the instrumented hot
  path neither allocates nor synchronizes when tracing is off.

Tracing is observation-only by construction: no instrumentation point
touches gradient data, RNG streams, or exchange ordering, so traced
and untraced runs are bit-identical (asserted by
``tests/telemetry/test_trace_identity.py``).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass

__all__ = [
    "PHASES",
    "COORDINATOR",
    "TraceEvent",
    "Counters",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]

#: canonical span names, mirroring the paper's breakdown figures
PHASES = ("compute", "encode", "transfer", "decode", "barrier")

#: track id for work done on the coordinator (exchange-driving) thread
COORDINATOR = -1


@dataclass(frozen=True)
class TraceEvent:
    """One completed span on one track (times from the monotonic clock)."""

    name: str
    track: int
    start_ns: int
    duration_ns: int

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


class Counters:
    """Typed, thread-safe counters for one traced run.

    Attributes:
        encode_calls / decode_calls: quantizer kernel invocations on the
            exchange path (every encoded message is decoded exactly
            once, so the two match — asserted by the parity tests).
        encoded_bytes / decoded_bytes: wire sizes of those messages.
        barrier_wait_seconds: time ranks (and the coordinator) spent
            blocked on step barriers and bucket rendezvous.
        straggler_stall_seconds: injected straggler delay actually slept.
        retries_total: failed step attempts that were re-tried by the
            resilience layer (see :mod:`repro.runtime.resilience`).
        evicted_ranks: ranks removed from the collective after
            exhausting their retries, in eviction order.
        rounds_skipped: micro-steps that ran no exchange because they
            fell inside a periodic-synchronization round
            (``aggregation_frequency > 1``).
        wire_bytes_saved: upload-side estimate of bytes *not* put on
            the wire by those skipped steps (live ranks x per-rank
            encoded payload), the counterpart of ``wire_bytes_total``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.encode_calls = 0
        self.decode_calls = 0
        self.encoded_bytes = 0
        self.decoded_bytes = 0
        self.barrier_wait_seconds = 0.0
        self.straggler_stall_seconds = 0.0
        self.retries_total = 0
        self.rounds_skipped = 0
        self.wire_bytes_saved = 0
        self.evicted_ranks: list[int] = []
        self._retries_by: dict[int, int] = defaultdict(int)
        self._sent_by: dict[int, int] = defaultdict(int)
        self._received_by: dict[int, int] = defaultdict(int)
        # per-layer (per gradient stream) accounting, keyed by the
        # exchange key (parameter name); the adaptive bit-width policy
        # consumes these measured profiles to re-derive assignments
        self._layer_encode_calls: dict[str, int] = defaultdict(int)
        self._layer_encoded_bytes: dict[str, int] = defaultdict(int)
        self._layer_decode_calls: dict[str, int] = defaultdict(int)
        self._layer_wire_bytes: dict[str, int] = defaultdict(int)

    # -- wire traffic -----------------------------------------------------
    def count_wire(
        self, src: int, dst: int, nbytes: int, tag: str = ""
    ) -> None:
        """Record ``nbytes`` moving up from ``src`` and down to ``dst``.

        A non-empty ``tag`` (the exchange key, i.e. the parameter name)
        additionally attributes the bytes to that gradient stream for
        the per-layer wire profile.
        """
        with self._lock:
            self._sent_by[src] += nbytes
            self._received_by[dst] += nbytes
            if tag:
                self._layer_wire_bytes[tag] += nbytes

    @property
    def wire_bytes_total(self) -> int:
        """Total bytes moved across links (equals link-traffic totals)."""
        with self._lock:
            return sum(self._sent_by.values())

    def bytes_sent(self, rank: int) -> int:
        """Bytes rank ``rank`` put on the wire ("up")."""
        with self._lock:
            return self._sent_by.get(rank, 0)

    def bytes_received(self, rank: int) -> int:
        """Bytes delivered to rank ``rank`` ("down")."""
        with self._lock:
            return self._received_by.get(rank, 0)

    def count_skipped_round(self, nbytes_saved: int) -> None:
        """Record one exchange-free micro-step of a sync round."""
        with self._lock:
            self.rounds_skipped += 1
            self.wire_bytes_saved += nbytes_saved

    # -- codec calls ------------------------------------------------------
    def count_encode(self, nbytes: int, key: str | None = None) -> None:
        with self._lock:
            self.encode_calls += 1
            self.encoded_bytes += nbytes
            if key:
                self._layer_encode_calls[key] += 1
                self._layer_encoded_bytes[key] += nbytes

    def count_decode(self, nbytes: int, key: str | None = None) -> None:
        with self._lock:
            self.decode_calls += 1
            self.decoded_bytes += nbytes
            if key:
                self._layer_decode_calls[key] += 1

    def layer_profile(self) -> dict[str, dict[str, int]]:
        """Measured per-layer encode-cost and wire-byte profile.

        One record per gradient stream that touched the exchange path:
        ``encode_calls`` / ``encoded_bytes`` measure the codec work the
        stream cost, ``wire_bytes`` the link traffic it generated.
        The dict is sorted by layer name, so identical runs produce
        identical (and directly comparable) profiles — this is the
        input :meth:`repro.quantization.AdaptiveBitWidthPolicy.refit`
        consumes.
        """
        with self._lock:
            names = sorted(
                set(self._layer_encode_calls)
                | set(self._layer_wire_bytes)
                | set(self._layer_decode_calls)
            )
            return {
                name: {
                    "encode_calls": self._layer_encode_calls.get(name, 0),
                    "encoded_bytes": self._layer_encoded_bytes.get(name, 0),
                    "decode_calls": self._layer_decode_calls.get(name, 0),
                    "wire_bytes": self._layer_wire_bytes.get(name, 0),
                }
                for name in names
            }

    # -- waiting ----------------------------------------------------------
    def add_barrier_wait(self, seconds: float) -> None:
        with self._lock:
            self.barrier_wait_seconds += seconds

    def add_straggler_stall(self, seconds: float) -> None:
        with self._lock:
            self.straggler_stall_seconds += seconds

    # -- resilience -------------------------------------------------------
    def count_retry(self, rank: int) -> None:
        """Record one re-attempted step after ``rank`` failed."""
        with self._lock:
            self.retries_total += 1
            self._retries_by[rank] += 1

    def count_eviction(self, rank: int) -> None:
        """Record ``rank`` leaving the collective for good."""
        with self._lock:
            self.evicted_ranks.append(rank)

    def retries(self, rank: int) -> int:
        """Retries attributed to failures of rank ``rank``."""
        with self._lock:
            return self._retries_by.get(rank, 0)

    def to_dict(self) -> dict:
        """JSON-friendly snapshot of every counter.

        The snapshot is stamped with the quantization kernel backend
        active at snapshot time so exported traces attribute their
        encode/decode timings to the backend that produced them.
        """
        from ..quantization import kernels

        with self._lock:
            return {
                "kernel_backend": kernels.backend_name(),
                "wire_bytes_total": sum(self._sent_by.values()),
                "bytes_sent": dict(self._sent_by),
                "bytes_received": dict(self._received_by),
                "encode_calls": self.encode_calls,
                "decode_calls": self.decode_calls,
                "encoded_bytes": self.encoded_bytes,
                "decoded_bytes": self.decoded_bytes,
                "barrier_wait_seconds": self.barrier_wait_seconds,
                "straggler_stall_seconds": self.straggler_stall_seconds,
                "retries_total": self.retries_total,
                "rounds_skipped": self.rounds_skipped,
                "wire_bytes_saved": self.wire_bytes_saved,
                "retries_by_rank": dict(self._retries_by),
                "evicted_ranks": list(self.evicted_ranks),
                "layer_profile": {
                    name: {
                        "encode_calls": self._layer_encode_calls.get(
                            name, 0
                        ),
                        "encoded_bytes": self._layer_encoded_bytes.get(
                            name, 0
                        ),
                        "decode_calls": self._layer_decode_calls.get(
                            name, 0
                        ),
                        "wire_bytes": self._layer_wire_bytes.get(name, 0),
                    }
                    for name in sorted(
                        set(self._layer_encode_calls)
                        | set(self._layer_wire_bytes)
                        | set(self._layer_decode_calls)
                    )
                },
            }


class _Span:
    """One live span; records a :class:`TraceEvent` when it exits."""

    __slots__ = ("_tracer", "_name", "_track", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, track: int):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        end_ns = time.perf_counter_ns()
        self._tracer._record(
            TraceEvent(
                name=self._name,
                track=self._track,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
            )
        )
        return False


class _NullSpan:
    """Reusable no-op context manager (one shared instance, ever)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` hands back one shared null context manager and
    ``counter_sink`` is ``None`` (byte-accounting call sites check for
    ``None`` instead of calling through), so steady-state training with
    tracing off performs zero tracing allocations — the overhead-guard
    test and ``bench_hotpath.py`` both pin this.
    """

    enabled = False
    counter_sink = None

    def span(self, name: str, track: int = COORDINATOR) -> _NullSpan:
        return _NULL_SPAN

    def record(self, event: TraceEvent) -> None:
        pass

    def phase_seconds(self, track: int | None = None) -> dict[str, float]:
        return {}

    def events(self) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans and counters from one (or more) training runs.

    Spans nest freely — each ``with tracer.span(name, track)`` records
    its own interval — and may be opened concurrently from several
    threads: the threaded engine's rank workers each trace onto their
    own ``track`` while the coordinator traces exchanges onto
    :data:`COORDINATOR`.  Timing uses the monotonic
    ``time.perf_counter_ns`` clock, so wall-clock adjustments never
    corrupt a trace.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self.counters = Counters()

    #: counter sink used by the byte-accounting hot path; ``None`` on
    #: the null tracer so disabled runs skip the call entirely
    @property
    def counter_sink(self) -> Counters:
        return self.counters

    def span(self, name: str, track: int = COORDINATOR) -> _Span:
        """Open a nestable span named ``name`` on ``track``."""
        return _Span(self, name, track)

    def record(self, event: TraceEvent) -> None:
        """Append one already-completed span to the trace.

        This is how spans recorded elsewhere get merged in — the
        process engine's workers each trace locally and ship their
        events back to the coordinator's tracer (``perf_counter_ns``
        reads the system-wide monotonic clock on Linux, so timestamps
        from other processes share this trace's timebase).
        """
        self._record(event)

    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> list[TraceEvent]:
        """Snapshot of every completed span, in completion order."""
        with self._lock:
            return list(self._events)

    def tracks(self) -> list[int]:
        """Sorted track ids that recorded at least one span."""
        with self._lock:
            return sorted({event.track for event in self._events})

    def phase_seconds(self, track: int | None = None) -> dict[str, float]:
        """Total seconds per span name (optionally for one track)."""
        totals: dict[str, float] = {}
        with self._lock:
            for event in self._events:
                if track is not None and event.track != track:
                    continue
                totals[event.name] = (
                    totals.get(event.name, 0.0) + event.seconds
                )
        return totals

    def clear(self) -> None:
        """Drop all events and counters (a fresh run on the same tracer)."""
        with self._lock:
            self._events.clear()
        self.counters = Counters()
