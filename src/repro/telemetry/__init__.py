"""Telemetry: measured per-rank tracing for real training runs.

The subsystem the paper's empirical methodology implies but the repo's
simulator-only observability lacked: a :class:`Tracer` records
nestable, monotonic-clock spans (``compute`` / ``encode`` /
``transfer`` / ``decode`` / ``barrier``) on one track per rank, typed
:class:`Counters` account wire bytes, codec calls and barrier/straggler
waiting, and exporters render a Chrome-trace JSON
(:func:`write_chrome_trace`) or an aggregated :class:`PhaseBreakdown`
mirroring the paper's stacked-bar figures.  Cross-validation against
the calibrated performance simulator lives in
:mod:`repro.telemetry.crossval`.

Tracing defaults off via the shared :data:`NULL_TRACER` no-op (near
zero overhead, nothing allocated in steady state) and is observation
only: traced and untraced runs are bit-identical.  Enable it by
passing a tracer through the config::

    from repro import ParallelTrainer, TrainingConfig
    from repro.telemetry import PhaseBreakdown, Tracer, write_chrome_trace

    tracer = Tracer()
    config = TrainingConfig(scheme="qsgd4", exchange="nccl",
                            world_size=4, tracer=tracer)
    ...  # train as usual
    write_chrome_trace(tracer, "trace.json")
    print(PhaseBreakdown.from_history(history).report())
"""

from .crossval import CrossValidation, RatioRow, cross_validate
from .export import PhaseBreakdown, chrome_trace, write_chrome_trace
from .tracer import (
    COORDINATOR,
    NULL_TRACER,
    PHASES,
    Counters,
    NullTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "COORDINATOR",
    "NULL_TRACER",
    "PHASES",
    "Counters",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "PhaseBreakdown",
    "chrome_trace",
    "write_chrome_trace",
    "CrossValidation",
    "RatioRow",
    "cross_validate",
]
