"""Trace exporters: Chrome ``chrome://tracing`` JSON and phase reports.

Two consumers of a recorded :class:`~repro.telemetry.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format (load ``trace.json`` in ``chrome://tracing`` or Perfetto):
  one complete ``"X"`` event per span with microsecond ``ts``/``dur``,
  one ``tid`` (track) per rank plus a named coordinator track.
* :class:`PhaseBreakdown` — the aggregated per-phase seconds of a run,
  mirroring the paper's stacked-bar epoch-time figures (compute vs
  encode vs transfer vs decode), with an explicit ``other`` bucket for
  un-traced step work so the rows always sum to the measured wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .tracer import COORDINATOR, PHASES, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "PhaseBreakdown",
]


def _track_label(track: int) -> str:
    return "coordinator" if track == COORDINATOR else f"rank {track}"


def chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer's events as a Chrome trace-event document.

    Returns a dict with a ``traceEvents`` list: one ``ph: "X"``
    (complete) event per span carrying ``ts`` and ``dur`` in
    microseconds relative to the earliest span, ``pid`` 0, and the
    span's track as ``tid``; plus one ``ph: "M"`` ``thread_name``
    metadata event per track so ranks are labelled in the viewer.  The
    coordinator track (:data:`~repro.telemetry.tracer.COORDINATOR`) is
    remapped to the tid after the highest rank, keeping all tids
    non-negative.
    """
    events = tracer.events()
    origin_ns = min((e.start_ns for e in events), default=0)
    max_track = max((e.track for e in events), default=0)
    coord_tid = max(max_track, -1) + 1

    def tid(track: int) -> int:
        return coord_tid if track == COORDINATOR else track

    trace_events: list[dict] = []
    for track in sorted({e.track for e in events}):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid(track),
                "args": {"name": _track_label(track)},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "cat": "phase",
                "ph": "X",
                "ts": (event.start_ns - origin_ns) / 1e3,
                "dur": event.duration_ns / 1e3,
                "pid": 0,
                "tid": tid(event.track),
            }
        )
    from ..quantization import kernels

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            # provenance: which quantization kernel backend produced the
            # encode/decode spans in this trace
            "kernel_backend": kernels.backend_name(),
            "counters": tracer.counters.to_dict(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
        fh.write("\n")


@dataclass
class PhaseBreakdown:
    """Per-phase seconds of one measured run (the paper's figure unit).

    Attributes:
        label: cell label, e.g. ``"qsgd4/nccl/4gpu"``.
        wall_seconds: measured wall time the phases decompose.
        phase_seconds: traced busy seconds per canonical phase name.
    """

    label: str
    wall_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def traced_seconds(self) -> float:
        """Seconds accounted to a traced phase."""
        return sum(self.phase_seconds.get(name, 0.0) for name in PHASES)

    @property
    def other_seconds(self) -> float:
        """Un-traced step work (data sharding, metric collection...)."""
        return max(0.0, self.wall_seconds - self.traced_seconds)

    @property
    def total_seconds(self) -> float:
        """Sum of every reported row, ``other`` included."""
        return self.traced_seconds + self.other_seconds

    def rows(self) -> list[tuple[str, float]]:
        """(phase, seconds) rows in canonical order, ``other`` last."""
        out = [
            (name, self.phase_seconds.get(name, 0.0)) for name in PHASES
        ]
        out.append(("other", self.other_seconds))
        return out

    def fractions(self) -> dict[str, float]:
        """Share of the total per phase (zeros when nothing measured)."""
        total = self.total_seconds
        if total <= 0.0:
            return {name: 0.0 for name, _ in self.rows()}
        return {name: sec / total for name, sec in self.rows()}

    @classmethod
    def from_tracer(
        cls, tracer: Tracer, wall_seconds: float, label: str = ""
    ) -> "PhaseBreakdown":
        """Aggregate a tracer's spans into one breakdown."""
        phases = tracer.phase_seconds()
        return cls(
            label=label,
            wall_seconds=wall_seconds,
            phase_seconds={
                name: phases.get(name, 0.0) for name in PHASES
            },
        )

    @classmethod
    def from_history(cls, history) -> "PhaseBreakdown":
        """Aggregate a traced run's :class:`~repro.core.History`.

        Uses the per-epoch phase seconds the trainer records when
        tracing is on and the per-epoch training wall time (test-set
        evaluation is outside both).
        """
        totals = history.phase_totals()
        wall = sum(m.wall_seconds for m in history.epochs)
        return cls(
            label=history.label, wall_seconds=wall, phase_seconds=totals
        )

    def report(self) -> str:
        """Text table of the breakdown, paper-figure style."""
        lines = [f"phase breakdown [{self.label}]"]
        total = self.total_seconds
        for name, seconds in self.rows():
            share = seconds / total if total > 0 else 0.0
            lines.append(f"  {name:9s} {seconds:9.4f} s  {share:6.1%}")
        lines.append(
            f"  {'total':9s} {total:9.4f} s  (wall "
            f"{self.wall_seconds:.4f} s)"
        )
        return "\n".join(lines)
