"""Compare simulated throughput against the paper's Figures 10/11.

Run:  python tools/calibration_report.py
"""

from __future__ import annotations

import numpy as np

from repro.simulator import PAPER_MPI_TABLE, PAPER_NCCL_TABLE, simulate


def machine_for(world_size: int) -> str:
    if world_size == 1:
        return "p2.xlarge"
    if world_size <= 8:
        return "p2.8xlarge"
    return "p2.16xlarge"


def report(table, exchange) -> None:
    print(f"\n===== {exchange.upper()} =====")
    all_errors = []
    for network, schemes in table.items():
        errors = []
        for scheme, cells in schemes.items():
            for world_size, paper in cells.items():
                sim = simulate(
                    network, machine_for(world_size), scheme, exchange,
                    world_size,
                ).samples_per_second
                err = (sim - paper) / paper
                errors.append(err)
                all_errors.append(abs(err))
                flag = "  <<<" if abs(err) > 0.35 else ""
                print(
                    f"{network:13s} {scheme:7s} K={world_size:2d} "
                    f"sim={sim:8.1f} paper={paper:8.1f} "
                    f"err={err:+6.1%}{flag}"
                )
        print(
            f"-- {network}: mean|err|="
            f"{np.mean([abs(e) for e in errors]):.1%}"
        )
    print(f"\nOVERALL mean|err| = {np.mean(all_errors):.1%}, "
          f"median = {np.median(all_errors):.1%}, "
          f"worst = {np.max(all_errors):.1%}")


if __name__ == "__main__":
    report(PAPER_MPI_TABLE, "mpi")
    report(PAPER_NCCL_TABLE, "nccl")
