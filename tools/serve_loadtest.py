"""Load-test the `repro serve` daemon: many jobs, one SIGKILL, no loss.

Run:  PYTHONPATH=src python tools/serve_loadtest.py [--jobs 200]

Submits a batch of tiny training jobs with mixed priorities and world
sizes to a daemon with a 4-rank pool, SIGKILLs the daemon while jobs
are mid-flight, restarts it in ``--drain`` mode, and then checks the
hard guarantees of the serve subsystem:

  * every job reaches a terminal state (here: all succeeded),
  * every digest equals the digest of an uninterrupted in-process run
    of the same spec (bit-identical recovery),
  * at least one interrupted job resumed from an on-disk checkpoint
    instead of restarting from scratch.

Exits 0 when every check holds, 1 otherwise.
"""

import argparse
import itertools
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import JobSpec, JobState, JobStore, TERMINAL_STATES
from repro.serve.runner import run_job

TINY = {
    "model": "alexnet",
    "world_size": 1,
    "batch_size": 16,
    "epochs": 1,
    "train_samples": 16,
    "test_samples": 8,
    "image_size": 8,
}

#: the bulk of the batch: tiny jobs over mixed schemes and world sizes
VARIANTS = [
    {**TINY, "scheme": "32bit"},
    {**TINY, "scheme": "qsgd4", "world_size": 2},
    {**TINY, "scheme": "qsgd8", "world_size": 4},
    {**TINY, "scheme": "qsgd2", "world_size": 2, "epochs": 2},
]

#: a longer job the SIGKILL is guaranteed to catch mid-flight, so the
#: run also proves checkpoint resume (not just requeue-from-scratch)
SLOW = {**TINY, "scheme": "qsgd4", "epochs": 40, "train_samples": 64}


def http_json(url, payload=None, method=None):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def start_daemon(root, max_ranks, *extra):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--port", "0", "--max-ranks", str(max_ranks),
         "--poll-interval", "0.02", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    banner = process.stdout.readline()
    if "serving on http://" not in banner:
        raise RuntimeError(f"daemon failed to start: {banner!r}")
    port = int(banner.split("http://", 1)[1].split(" ", 1)[0]
               .rsplit(":", 1)[1])
    return process, port


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise TimeoutError(f"{message} not reached within {timeout}s")


def reference_digests(specs, scratch):
    digests = {}
    for index, spec in enumerate(specs):
        key = json.dumps(spec, sort_keys=True)
        if key in digests:
            continue
        store = JobStore(scratch / f"ref-{index}")
        record = store.submit(JobSpec.from_dict(spec))
        if run_job(store.job_dir(record.job_id)) != 0:
            raise RuntimeError(f"reference run failed for {spec}")
        digests[key] = store.read_result(record.job_id)["digest"]
    return digests


def no_runners_left():
    for path in Path("/proc").glob("[0-9]*/cmdline"):
        try:
            if b"repro.serve.runner" in path.read_bytes():
                return False
        except OSError:
            continue
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--max-ranks", type=int, default=4)
    parser.add_argument("--root", type=Path, default=None)
    args = parser.parse_args()

    root = args.root or Path(tempfile.mkdtemp(prefix="serve-loadtest-"))
    scratch = root / "references"
    started = time.monotonic()

    variants = itertools.cycle(VARIANTS)
    batch = [(SLOW, 0), (SLOW, 9)]
    batch += [
        (next(variants), priority)
        for priority in itertools.islice(
            itertools.cycle((0, 5, 1, 9, 3)), max(0, args.jobs - 2)
        )
    ]
    print(f"computing reference digests for "
          f"{len({json.dumps(s, sort_keys=True) for s, _ in batch})} "
          f"distinct specs ...")
    digests = reference_digests([spec for spec, _ in batch], scratch)

    store_root = root / "store"
    process, port = start_daemon(store_root, args.max_ranks)
    base = f"http://127.0.0.1:{port}"
    print(f"daemon pid={process.pid} on {base}; "
          f"submitting {len(batch)} jobs ...")

    job_ids = []
    for spec, priority in batch:
        code, body = http_json(
            base + "/jobs", {"spec": spec, "priority": priority}
        )
        if code != 201:
            raise RuntimeError(f"submit failed ({code}): {body}")
        job_ids.append(body["job_id"])
    slow_ids = job_ids[:2]

    def mid_flight():
        store = JobStore(store_root)
        running_slow = any(
            store.get(job_id).state == JobState.RUNNING
            and any(store.checkpoint_dir(job_id).glob("ckpt-*.npz"))
            for job_id in slow_ids
        )
        return running_slow and store.counts().get("succeeded", 0) >= 5

    wait_for(mid_flight, 300, "jobs mid-flight")
    print(f"SIGKILL daemon pid={process.pid} mid-flight")
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=60)
    wait_for(no_runners_left, 60, "orphan runner exit")

    print("restarting with --drain ...")
    drained, _ = start_daemon(store_root, args.max_ranks, "--drain")
    output = drained.stdout.read()
    if drained.wait(timeout=1800) != 0:
        print(output)
        raise RuntimeError("drain run exited non-zero")

    store = JobStore(store_root)
    failures = []
    resumed = 0
    for job_id, (spec, _) in zip(job_ids, batch):
        record = store.get(job_id)
        if record.state not in TERMINAL_STATES:
            failures.append(f"{job_id}: non-terminal {record.state}")
            continue
        if record.state != JobState.SUCCEEDED:
            failures.append(
                f"{job_id}: {record.state} ({record.error})"
            )
            continue
        expected = digests[json.dumps(spec, sort_keys=True)]
        if record.result["digest"] != expected:
            failures.append(f"{job_id}: digest mismatch")
        if (record.result["resumed_from_step"] or 0) > 0:
            resumed += 1

    if resumed == 0:
        failures.append("no job resumed from a checkpoint")
    elapsed = time.monotonic() - started
    counts = store.counts()
    print(f"done in {elapsed:.1f}s: {counts}; "
          f"{resumed} job(s) resumed from checkpoints")
    if failures:
        for line in failures[:20]:
            print(f"FAIL {line}")
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all jobs terminal, every digest matches its "
          "uninterrupted reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
