"""Generate the measured-results data behind EXPERIMENTS.md.

Runs the Figure 5 accuracy studies (full scale) and the simulator
comparisons, and writes everything to tools/results.json.

    python tools/generate_results.py [--quick]
"""

import json
import sys
import time

import numpy as np

from repro.study import (
    FIG5_EXPERIMENTS,
    cost_accuracy_curve,
    evaluate_insights,
    extrapolation_curve,
    run_accuracy_experiment,
    throughput_table,
)


def main() -> None:
    scale = "quick" if "--quick" in sys.argv else "full"
    results = {"scale": scale, "accuracy": {}, "throughput": {},
               "cost": {}, "extrapolation": [], "insights": []}

    for exchange in ("mpi", "nccl"):
        cells = [
            c for c in throughput_table(exchange) if c.paper is not None
        ]
        errors = [abs(c.relative_error) for c in cells]
        results["throughput"][exchange] = {
            "cells": len(cells),
            "mean_abs_error": float(np.mean(errors)),
            "median_abs_error": float(np.median(errors)),
        }

    for network in ("AlexNet", "ResNet50", "ResNet152"):
        point = cost_accuracy_curve(network, fractions=(1.0,))[0]
        results["cost"][network] = {
            "dollars": point.dollars,
            "accuracy": point.accuracy,
            "machine": point.machine,
            "gpus": point.world_size,
        }

    results["extrapolation"] = [
        {"mb_per_gflops": p.mb_per_gflops, "speedup": p.speedup}
        for p in extrapolation_curve()
    ]

    results["insights"] = [
        {"question": i.question, "holds": i.holds,
         "reproduced": i.reproduced_answer}
        for i in evaluate_insights()
    ]

    for figure in sorted(FIG5_EXPERIMENTS):
        start = time.time()
        histories = run_accuracy_experiment(figure, scale=scale)
        results["accuracy"][figure] = {
            label: {
                "final_test_accuracy": h.final_test_accuracy,
                "best_test_accuracy": h.best_test_accuracy,
                "final_train_loss": h.epochs[-1].train_loss,
                "comm_mb_per_epoch": h.epochs[-1].comm_bytes / 1e6,
                "test_accuracy_curve": [
                    round(v, 4) for v in h.series("test_accuracy")
                ],
            }
            for label, h in histories.items()
        }
        print(f"{figure} done in {time.time() - start:.0f}s", flush=True)

    with open("tools/results.json", "w") as handle:
        json.dump(results, handle, indent=1)
    print("wrote tools/results.json")


if __name__ == "__main__":
    main()
